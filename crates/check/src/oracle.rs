//! The JEDEC protocol oracle.
//!
//! [`ProtocolOracle`] is a deliberately naive re-derivation of the DDR4 (and
//! RRAM) command rules from the timing parameters alone. It shares no state
//! machine with `sam_dram::device` — where the device folds every rule into
//! precomputed `next_*` windows, the oracle keeps the raw event history
//! (last ACT, last closing PRE, last read, last write, the four most recent
//! ACTs per rank, lane release times) and re-checks each window from first
//! principles.
//!
//! # Command ordering
//!
//! The controller back-dates commands: a request that queued for a long time
//! may issue at a cycle earlier than commands already recorded (its cursor
//! starts at the request's arrival time). The observer therefore sees the
//! stream in *issue order*, not cycle order. The oracle buffers everything
//! and checks the cycle-sorted stream at [`ProtocolOracle::finish`] — sound
//! for bank/rank/channel windows because the per-resource rules themselves
//! force cycle monotonicity on each resource (e.g. two ACTs to one rank are
//! at least tRRD_S apart in both orders).
//!
//! The one exception is the mode register: MRS has no timing window, so a
//! back-dated MRS may carry an older cycle than data commands that issued
//! (and were mode-checked by the device) *before* it. I/O-mode consistency
//! and the post-MRS tRTR settle window are therefore checked in issue order
//! as commands are recorded, exactly like the physical mode register applies
//! them.

use std::collections::VecDeque;

use sam_dram::command::{CmdKind, Command};
use sam_dram::device::DeviceConfig;
use sam_dram::moderegs::IoMode;
use sam_dram::observe::CommandObserver;
use sam_dram::timing::TimingParams;
use sam_dram::Cycle;

use crate::{Constraint, Violation};

/// JEDEC allows postponing up to eight refresh commands, so consecutive
/// REFs may legally be up to nine intervals apart.
const REFI_SLACK: u64 = 9;

/// Geometry and timing the oracle checks against.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Timing parameters (the oracle trusts only these numbers, not the
    /// device's derived state).
    pub timing: TimingParams,
    /// Number of ranks.
    pub ranks: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Columns (bursts) per row.
    pub cols_per_row: u64,
    /// Whether tREFI deadlines are enforced (off for refresh-free
    /// substrates such as RRAM).
    pub check_refresh: bool,
}

impl OracleConfig {
    /// Builds an oracle configuration mirroring `cfg`.
    pub fn from_device(cfg: &DeviceConfig) -> Self {
        Self {
            timing: cfg.timing,
            ranks: cfg.ranks,
            bank_groups: cfg.bank_groups,
            banks_per_group: cfg.banks_per_group,
            rows_per_bank: cfg.rows_per_bank,
            cols_per_row: cfg.cols_per_row,
            check_refresh: cfg.timing.needs_refresh(),
        }
    }

    /// The DDR4 server-channel geometry (2 ranks, 4x4 banks).
    pub fn ddr4_server() -> Self {
        Self::from_device(&DeviceConfig::ddr4_server())
    }

    /// Enables or disables tREFI deadline checking (builder-style).
    pub fn with_refresh_checking(mut self, on: bool) -> Self {
        self.check_refresh = on;
        self
    }
}

type Ev = (Command, Cycle);

/// Per-rank mode-register shadow, advanced in issue order.
#[derive(Debug, Clone)]
struct ModeCk {
    io_mode: IoMode,
    mode_ready: Cycle,
    last_mrs: Option<Ev>,
}

impl Default for ModeCk {
    fn default() -> Self {
        Self {
            io_mode: IoMode::X4,
            mode_ready: 0,
            last_mrs: None,
        }
    }
}

/// Shadow-checks a command stream against the JEDEC rules.
///
/// Attach it to a device (via the `check` feature's
/// `MemoryDevice::attach_observer`) or feed it manually with
/// [`ProtocolOracle::record`], then call [`ProtocolOracle::finish`].
#[derive(Debug, Clone)]
pub struct ProtocolOracle {
    cfg: OracleConfig,
    log: Vec<Ev>,
    modes: Vec<ModeCk>,
    mode_violations: Vec<Violation>,
}

impl ProtocolOracle {
    /// Creates an oracle for the given configuration.
    pub fn new(cfg: OracleConfig) -> Self {
        let modes = vec![ModeCk::default(); cfg.ranks];
        Self {
            cfg,
            log: Vec::new(),
            modes,
            mode_violations: Vec::new(),
        }
    }

    /// The configuration this oracle checks against.
    pub fn config(&self) -> &OracleConfig {
        &self.cfg
    }

    /// Records one command in issue order.
    pub fn record(&mut self, cmd: &Command, at: Cycle) {
        if cmd.rank < self.cfg.ranks {
            self.mode_check(cmd, at);
        }
        self.log.push((*cmd, at));
    }

    /// Number of commands recorded so far.
    pub fn command_count(&self) -> usize {
        self.log.len()
    }

    /// The recorded command stream, in issue order.
    pub fn commands(&self) -> &[(Command, Cycle)] {
        &self.log
    }

    /// Checks everything recorded so far and returns the violations,
    /// ordered by cycle.
    pub fn check(&self) -> Vec<Violation> {
        let mut sorted = self.log.clone();
        // Stable: same-cycle commands keep issue order, matching the device.
        sorted.sort_by_key(|&(_, at)| at);
        let mut checker = Checker::new(&self.cfg);
        for (cmd, at) in &sorted {
            checker.feed(cmd, *at);
        }
        let mut all = self.mode_violations.clone();
        all.extend(checker.finalize());
        all.sort_by_key(|v| v.at);
        all
    }

    /// Consumes the oracle and returns all violations, ordered by cycle.
    pub fn finish(self) -> Vec<Violation> {
        self.check()
    }

    /// I/O-mode consistency runs in issue order: the mode register is
    /// program-order state, and MRS (unlike every other command) carries no
    /// timing window that would pin its position in the cycle-sorted view.
    fn mode_check(&mut self, cmd: &Command, at: Cycle) {
        let rtr = self.cfg.timing.rtr;
        let m = &mut self.modes[cmd.rank];
        match cmd.kind {
            CmdKind::Mrs(mode) if mode != m.io_mode => {
                m.io_mode = mode;
                m.mode_ready = m.mode_ready.max(at + rtr);
                m.last_mrs = Some((*cmd, at));
            }
            CmdKind::Rd { stride, .. } | CmdKind::Wr { stride, .. } => {
                if stride != m.io_mode.is_stride() {
                    self.mode_violations.push(Violation {
                        constraint: Constraint::IoMode,
                        cmd: *cmd,
                        at,
                        prior: m.last_mrs,
                        earliest: at,
                    });
                }
                if at < m.mode_ready {
                    self.mode_violations.push(Violation {
                        constraint: Constraint::TRtr,
                        cmd: *cmd,
                        at,
                        prior: m.last_mrs,
                        earliest: m.mode_ready,
                    });
                }
            }
            _ => {}
        }
    }
}

impl CommandObserver for ProtocolOracle {
    fn on_command(&mut self, cmd: &Command, at: Cycle) {
        let _p = sam_obs::profile::phase("oracle");
        sam_obs::registry::ORACLE_COMMANDS.add(1);
        self.record(cmd, at);
    }
}

/// Replays `cmds` (in issue order) against a fresh oracle.
pub fn replay(cfg: OracleConfig, cmds: &[(Command, Cycle)]) -> Vec<Violation> {
    let mut oracle = ProtocolOracle::new(cfg);
    for (cmd, at) in cmds {
        oracle.record(cmd, *at);
    }
    oracle.finish()
}

#[derive(Debug, Clone, Default)]
struct BankCk {
    open_row: Option<u64>,
    last_act: Option<Ev>,
    /// Last *closing* precharge (PRE to an idle bank is a legal no-op).
    last_pre: Option<Ev>,
    last_rd: Option<Ev>,
    last_wr: Option<Ev>,
}

#[derive(Debug, Clone)]
struct RankCk {
    /// The (up to) four most recent ACTs — the tFAW sliding window.
    act_window: VecDeque<Ev>,
    last_act_any: Option<Ev>,
    last_act_bg: Vec<Option<Ev>>,
    last_col_any: Option<Ev>,
    last_col_bg: Vec<Option<Ev>>,
    last_wr_any: Option<Ev>,
    last_wr_bg: Vec<Option<Ev>>,
    last_ref: Option<Ev>,
}

impl RankCk {
    fn new(bank_groups: usize) -> Self {
        Self {
            act_window: VecDeque::with_capacity(4),
            last_act_any: None,
            last_act_bg: vec![None; bank_groups],
            last_col_any: None,
            last_col_bg: vec![None; bank_groups],
            last_wr_any: None,
            last_wr_bg: vec![None; bank_groups],
            last_ref: None,
        }
    }
}

/// The cycle-order pass: bank state plus every timing window.
struct Checker<'a> {
    cfg: &'a OracleConfig,
    banks: Vec<Vec<BankCk>>,
    ranks: Vec<RankCk>,
    lane_free: [Cycle; 4],
    lane_owner: [Option<Ev>; 4],
    last_bus_rank: Option<usize>,
    last_data: Option<Ev>,
    last_cycle: Cycle,
    violations: Vec<Violation>,
}

impl<'a> Checker<'a> {
    fn new(cfg: &'a OracleConfig) -> Self {
        let banks_per_rank = cfg.bank_groups * cfg.banks_per_group;
        Self {
            cfg,
            banks: vec![vec![BankCk::default(); banks_per_rank]; cfg.ranks],
            ranks: (0..cfg.ranks)
                .map(|_| RankCk::new(cfg.bank_groups))
                .collect(),
            lane_free: [0; 4],
            lane_owner: [None; 4],
            last_bus_rank: None,
            last_data: None,
            last_cycle: 0,
            violations: Vec::new(),
        }
    }

    fn flag(
        &mut self,
        constraint: Constraint,
        cmd: &Command,
        at: Cycle,
        prior: Option<Ev>,
        earliest: Cycle,
    ) {
        self.violations.push(Violation {
            constraint,
            cmd: *cmd,
            at,
            prior,
            earliest,
        });
    }

    /// Flags `constraint` if `at` falls inside the window `prior + width`.
    fn window(
        &mut self,
        constraint: Constraint,
        cmd: &Command,
        at: Cycle,
        prior: Option<Ev>,
        width: u64,
    ) {
        if let Some((_, prior_at)) = prior {
            if at < prior_at + width {
                self.flag(constraint, cmd, at, prior, prior_at + width);
            }
        }
    }

    fn geometry_ok(&self, cmd: &Command) -> bool {
        cmd.rank < self.cfg.ranks
            && cmd.bank_group < self.cfg.bank_groups
            && cmd.bank < self.cfg.banks_per_group
            && cmd.row < self.cfg.rows_per_bank
            && cmd.col < self.cfg.cols_per_row
    }

    fn feed(&mut self, cmd: &Command, at: Cycle) {
        self.last_cycle = self.last_cycle.max(at);
        if !self.geometry_ok(cmd) {
            self.flag(Constraint::Geometry, cmd, at, None, at);
            return;
        }
        match cmd.kind {
            CmdKind::Act => self.check_act(cmd, at),
            CmdKind::Pre => self.check_pre(cmd, at),
            CmdKind::Rd { .. } | CmdKind::Wr { .. } => self.check_col(cmd, at),
            CmdKind::Ref => self.check_ref(cmd, at),
            // Mode-register semantics are issue-order state, handled by
            // `ProtocolOracle::mode_check` before sorting.
            CmdKind::Mrs(_) => {}
        }
    }

    fn bank_idx(&self, cmd: &Command) -> usize {
        cmd.bank_group * self.cfg.banks_per_group + cmd.bank
    }

    fn check_act(&mut self, cmd: &Command, at: Cycle) {
        let t = self.cfg.timing;
        let bi = self.bank_idx(cmd);
        let bank = self.banks[cmd.rank][bi].clone();
        let rank = &self.ranks[cmd.rank];
        let (last_ref, last_act_any, last_act_bg) = (
            rank.last_ref,
            rank.last_act_any,
            rank.last_act_bg[cmd.bank_group],
        );
        let faw_anchor = if rank.act_window.len() == 4 {
            Some(rank.act_window[0])
        } else {
            None
        };

        if bank.open_row.is_some() {
            self.flag(Constraint::BankState, cmd, at, bank.last_act, at);
        }
        self.window(Constraint::TRc, cmd, at, bank.last_act, t.rc);
        self.window(Constraint::TRp, cmd, at, bank.last_pre, t.rp);
        self.window(Constraint::TRfc, cmd, at, last_ref, t.rfc);
        self.window(Constraint::TRrdS, cmd, at, last_act_any, t.rrd_s);
        self.window(Constraint::TRrdL, cmd, at, last_act_bg, t.rrd_l);
        self.window(Constraint::TFaw, cmd, at, faw_anchor, t.faw);

        let ev = (*cmd, at);
        let b = &mut self.banks[cmd.rank][bi];
        b.open_row = Some(cmd.row);
        b.last_act = Some(ev);
        let r = &mut self.ranks[cmd.rank];
        r.last_act_any = Some(ev);
        r.last_act_bg[cmd.bank_group] = Some(ev);
        if r.act_window.len() == 4 {
            r.act_window.pop_front();
        }
        r.act_window.push_back(ev);
    }

    fn check_pre(&mut self, cmd: &Command, at: Cycle) {
        let t = self.cfg.timing;
        let bi = self.bank_idx(cmd);
        let bank = self.banks[cmd.rank][bi].clone();
        if bank.open_row.is_none() {
            // PRE to an idle bank is a legal no-op.
            return;
        }
        let last_ref = self.ranks[cmd.rank].last_ref;
        self.window(Constraint::TRas, cmd, at, bank.last_act, t.ras);
        self.window(Constraint::TRtp, cmd, at, bank.last_rd, t.rtp);
        self.window(
            Constraint::TWr,
            cmd,
            at,
            bank.last_wr,
            t.cwl + t.burst + t.wr,
        );
        self.window(Constraint::TRfc, cmd, at, last_ref, t.rfc);

        let b = &mut self.banks[cmd.rank][bi];
        b.open_row = None;
        b.last_pre = Some((*cmd, at));
    }

    fn check_col(&mut self, cmd: &Command, at: Cycle) {
        let t = self.cfg.timing;
        let is_read = cmd.is_read();
        let lat = if is_read { t.cl } else { t.cwl };
        let bi = self.bank_idx(cmd);
        let bank = self.banks[cmd.rank][bi].clone();
        let rank = &self.ranks[cmd.rank];
        let (last_ref, last_col_any, last_col_bg, last_wr_any, last_wr_bg) = (
            rank.last_ref,
            rank.last_col_any,
            rank.last_col_bg[cmd.bank_group],
            rank.last_wr_any,
            rank.last_wr_bg[cmd.bank_group],
        );

        match bank.open_row {
            None => self.flag(Constraint::BankState, cmd, at, bank.last_pre, at),
            Some(row) if row != cmd.row => {
                // The command stream claims a row the bank does not have
                // open — a controller bookkeeping bug.
                self.flag(Constraint::BankState, cmd, at, bank.last_act, at);
            }
            Some(_) => {}
        }
        self.window(Constraint::TRcd, cmd, at, bank.last_act, t.rcd);
        self.window(Constraint::TRfc, cmd, at, last_ref, t.rfc);
        if t.wtw > 0 {
            self.window(Constraint::TWtw, cmd, at, bank.last_wr, t.wtw);
        }
        self.window(Constraint::TCcdS, cmd, at, last_col_any, t.ccd_s);
        self.window(Constraint::TCcdL, cmd, at, last_col_bg, t.ccd_l);
        if is_read {
            // Write-to-read turnaround counts from the end of the write
            // burst (WR issue + CWL + burst).
            self.window(
                Constraint::TWtrS,
                cmd,
                at,
                last_wr_any,
                t.cwl + t.burst + t.wtr_s,
            );
            self.window(
                Constraint::TWtrL,
                cmd,
                at,
                last_wr_bg,
                t.cwl + t.burst + t.wtr_l,
            );
        }

        // Data-bus occupancy: the burst starts `lat` after the command and
        // must not overlap whatever the command's lanes still carry.
        let data_start = at + lat;
        let (free, owner) = match cmd.narrow_lane() {
            Some(lane) => (
                self.lane_free[lane as usize],
                self.lane_owner[lane as usize],
            ),
            None => {
                let lane = (0..4).max_by_key(|&l| self.lane_free[l]).unwrap_or(0);
                (self.lane_free[lane], self.lane_owner[lane])
            }
        };
        if data_start < free {
            self.flag(
                Constraint::BusOverlap,
                cmd,
                at,
                owner,
                free.saturating_sub(lat),
            );
        } else if let Some(last) = self.last_bus_rank {
            if last != cmd.rank && data_start < free + t.rtr {
                self.flag(
                    Constraint::TRtr,
                    cmd,
                    at,
                    self.last_data,
                    (free + t.rtr).saturating_sub(lat),
                );
            }
        }

        let ev = (*cmd, at);
        let b = &mut self.banks[cmd.rank][bi];
        if is_read {
            b.last_rd = Some(ev);
        } else {
            b.last_wr = Some(ev);
        }
        let r = &mut self.ranks[cmd.rank];
        r.last_col_any = Some(ev);
        r.last_col_bg[cmd.bank_group] = Some(ev);
        if !is_read {
            r.last_wr_any = Some(ev);
            r.last_wr_bg[cmd.bank_group] = Some(ev);
        }
        let done = data_start + t.burst;
        match cmd.narrow_lane() {
            Some(lane) => {
                self.lane_free[lane as usize] = done;
                self.lane_owner[lane as usize] = Some(ev);
            }
            None => {
                self.lane_free = [done; 4];
                self.lane_owner = [Some(ev); 4];
            }
        }
        self.last_bus_rank = Some(cmd.rank);
        self.last_data = Some(ev);
    }

    fn check_ref(&mut self, cmd: &Command, at: Cycle) {
        let t = self.cfg.timing;
        let last_ref = self.ranks[cmd.rank].last_ref;
        if self.cfg.check_refresh {
            if let Some((_, prev)) = last_ref {
                let deadline = prev + REFI_SLACK * t.refi;
                if at > deadline {
                    self.flag(Constraint::TRefi, cmd, at, last_ref, deadline);
                }
            }
        }
        self.window(Constraint::TRfc, cmd, at, last_ref, t.rfc);
        // Refresh implicitly precharges every bank of the rank: open banks
        // must be precharge-able (their windows plus tRP), closed banks must
        // have finished their activate/precharge cycles.
        let banks = self.banks[cmd.rank].clone();
        for bank in &banks {
            if bank.open_row.is_some() {
                self.window(Constraint::TRas, cmd, at, bank.last_act, t.ras + t.rp);
                self.window(Constraint::TRtp, cmd, at, bank.last_rd, t.rtp + t.rp);
                self.window(
                    Constraint::TWr,
                    cmd,
                    at,
                    bank.last_wr,
                    t.cwl + t.burst + t.wr + t.rp,
                );
            } else {
                self.window(Constraint::TRc, cmd, at, bank.last_act, t.rc);
                self.window(Constraint::TRp, cmd, at, bank.last_pre, t.rp);
            }
        }
        for bank in &mut self.banks[cmd.rank] {
            bank.open_row = None;
        }
        self.ranks[cmd.rank].last_ref = Some((*cmd, at));
    }

    fn finalize(mut self) -> Vec<Violation> {
        if self.cfg.check_refresh {
            let refi = self.cfg.timing.refi;
            for r in 0..self.cfg.ranks {
                let last_ref = self.ranks[r].last_ref;
                let deadline = last_ref.map_or(0, |(_, ref_at)| ref_at) + REFI_SLACK * refi;
                if self.last_cycle > deadline {
                    let cmd = Command::refresh(r);
                    self.flag(Constraint::TRefi, &cmd, self.last_cycle, last_ref, deadline);
                }
            }
        }
        self.violations
    }
}

//! Shard envelopes and the merge oracle for distributed sweeps.
//!
//! A bench binary invoked with `--shard K/N` runs only the run indices a
//! deterministic, cost-weighted partitioner assigned to shard `K`, and
//! instead of printing tables it writes a self-describing envelope
//! (`results/<bin>.shard-K-of-N.json`). `sam-check merge-shards` collects
//! the `N` envelopes, validates them against each other, and replays the
//! binary's render phase over the reassembled submission-order records —
//! producing stdout and `results/<bin>.json` byte-identical to a local
//! unsharded run.
//!
//! This module is the bin-agnostic half of that contract: the envelope
//! schema, its lint, and [`merge`], which enforces the merge invariants
//! (same bin / shard count / total / argv everywhere, shard ids in range
//! and unique, per-run digests intact, no index claimed twice, no index
//! missing) and fails with a distinct [`ShardError`] per violation. The
//! render replay itself lives in `sam-bench`, next to the binaries.
//!
//! Envelope schema (`schema` 1, all keys required):
//!
//! ```text
//! { "report": "shard", "schema": 1, "bin": str,
//!   "shard": uint (1-based), "shards": uint, "total_runs": uint,
//!   "argv": [str, ...],           // canonical argv, no --jobs / --shard
//!   "runs": [ { "index": uint,    // global submission index
//!               "label": str,     // the sweep task's config label
//!               "digest": str,    // run_digest(index, label, record)
//!               "record": any } ] }
//! ```

use std::hash::Hasher;

use sam_util::fxhash::FxHasher;
use sam_util::json::Json;

/// The envelope schema version this code writes and accepts.
pub const SHARD_SCHEMA: u64 = 1;

/// One run captured by a shard: its global submission index, the sweep
/// task's label, and the bin-specific serialized result.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Global submission index in the unsharded sweep.
    pub index: usize,
    /// The sweep task's label (the failing-config name on panics).
    pub label: String,
    /// Integrity digest; see [`run_digest`].
    pub digest: String,
    /// The bin-specific serialized run result.
    pub record: Json,
}

/// A parsed `results/<bin>.shard-K-of-N.json` document.
#[derive(Debug, Clone)]
pub struct ShardEnvelope {
    /// Binary name (`"fig12"`, ...).
    pub bin: String,
    /// 1-based shard id (`K` of `--shard K/N`).
    pub shard: u64,
    /// Total shard count (`N`).
    pub shards: u64,
    /// Total runs in the unsharded sweep, across all shards.
    pub total_runs: usize,
    /// Canonical argv (no `--jobs`, no `--shard`) the merge re-parses to
    /// reconstruct the run configuration exactly.
    pub argv: Vec<String>,
    /// This shard's runs, in global submission-index order.
    pub runs: Vec<ShardRun>,
}

/// A violated merge invariant. Every variant renders a distinct message,
/// so CI and the adversarial tests can assert *which* invariant failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A document failed the envelope schema lint.
    Malformed(String),
    /// Envelopes disagree on the binary name.
    BinMismatch(String, String),
    /// Envelopes disagree on the shard count `N`.
    ShardCountMismatch(u64, u64),
    /// Envelopes disagree on the total run count.
    TotalMismatch(usize, usize),
    /// Envelopes disagree on the canonical argv.
    ArgvMismatch(String, String),
    /// A shard id is outside `1..=N`.
    ShardIdOutOfRange(u64, u64),
    /// Two envelopes claim the same shard id.
    DuplicateShard(u64),
    /// Fewer than `N` envelopes were provided.
    MissingShard(u64, u64),
    /// A run's stored digest does not match its recomputed digest.
    DigestMismatch(usize, String, String),
    /// Two shards both claim a run index.
    OverlappingRun(usize, u64, u64),
    /// No shard claims a run index.
    MissingRun(usize),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Malformed(e) => write!(f, "malformed shard envelope: {e}"),
            ShardError::BinMismatch(a, b) => {
                write!(f, "bin mismatch across envelopes: '{a}' vs '{b}'")
            }
            ShardError::ShardCountMismatch(a, b) => {
                write!(
                    f,
                    "shard-count mismatch: one envelope says N={a}, another N={b}"
                )
            }
            ShardError::TotalMismatch(a, b) => {
                write!(
                    f,
                    "total-run mismatch: one envelope says {a} runs, another {b}"
                )
            }
            ShardError::ArgvMismatch(a, b) => {
                write!(f, "argv mismatch across envelopes: [{a}] vs [{b}]")
            }
            ShardError::ShardIdOutOfRange(k, n) => {
                write!(f, "shard id {k} out of range 1..={n}")
            }
            ShardError::DuplicateShard(k) => write!(f, "duplicate envelope for shard {k}"),
            ShardError::MissingShard(k, n) => write!(f, "missing envelope for shard {k} of {n}"),
            ShardError::DigestMismatch(i, want, got) => write!(
                f,
                "digest mismatch on run {i}: envelope says {want}, record hashes to {got}"
            ),
            ShardError::OverlappingRun(i, a, b) => {
                write!(f, "overlapping run {i}: claimed by shard {a} and shard {b}")
            }
            ShardError::MissingRun(i) => write!(f, "gap: no shard claims run {i}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// The integrity digest of one run entry: a [`FxHasher`] over the global
/// index, the label, and the record's canonical JSON text. Guards against
/// hand-edited or truncated records inside an otherwise well-formed
/// envelope.
pub fn run_digest(index: usize, label: &str, record: &Json) -> String {
    let mut h = FxHasher::default();
    h.write_u64(index as u64);
    h.write(label.as_bytes());
    h.write(record.to_string().as_bytes());
    format!("{:016x}", h.finish())
}

impl ShardEnvelope {
    /// Serializes the envelope (the `results/<bin>.shard-K-of-N.json`
    /// schema). The output passes [`lint_shard_json`] and
    /// [`parse_envelope`] by construction.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("report", Json::str("shard")),
            ("schema", Json::UInt(SHARD_SCHEMA)),
            ("bin", Json::str(&self.bin)),
            ("shard", Json::UInt(self.shard)),
            ("shards", Json::UInt(self.shards)),
            ("total_runs", Json::UInt(self.total_runs as u64)),
            (
                "argv",
                Json::Array(self.argv.iter().map(Json::str).collect()),
            ),
            (
                "runs",
                Json::Array(
                    self.runs
                        .iter()
                        .map(|r| {
                            Json::object([
                                ("index", Json::UInt(r.index as u64)),
                                ("label", Json::str(&r.label)),
                                ("digest", Json::str(&r.digest)),
                                ("record", r.record.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn get_uint(doc: &Json, key: &str) -> Result<u64, String> {
    match doc.get(key) {
        Some(Json::UInt(v)) => Ok(*v),
        Some(v) => Err(format!("key '{key}' must be an unsigned integer, got {v}")),
        None => Err(format!("missing key '{key}'")),
    }
}

fn get_str(doc: &Json, key: &str) -> Result<String, String> {
    match doc.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(v) => Err(format!("key '{key}' must be a string, got {v}")),
        None => Err(format!("missing key '{key}'")),
    }
}

/// Validates a parsed shard-envelope document against the module schema.
///
/// # Errors
///
/// Returns a human-readable description of the first schema violation.
pub fn lint_shard_json(doc: &Json) -> Result<(), String> {
    match doc.get("report") {
        Some(Json::Str(s)) if s == "shard" => {}
        other => {
            return Err(format!(
                "key 'report' must be the string \"shard\", got {}",
                other.map_or_else(|| "nothing".to_string(), Json::to_string)
            ))
        }
    }
    let schema = get_uint(doc, "schema")?;
    if schema != SHARD_SCHEMA {
        return Err(format!(
            "unsupported shard schema {schema} (this tool reads schema {SHARD_SCHEMA})"
        ));
    }
    get_str(doc, "bin")?;
    let shard = get_uint(doc, "shard")?;
    let shards = get_uint(doc, "shards")?;
    if shards == 0 {
        return Err("key 'shards' must be at least 1".to_string());
    }
    if shard == 0 || shard > shards {
        return Err(format!("key 'shard' must be in 1..={shards}, got {shard}"));
    }
    let total = get_uint(doc, "total_runs")?;
    let argv = doc
        .get("argv")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing or non-array key 'argv'".to_string())?;
    for (i, a) in argv.iter().enumerate() {
        if !matches!(a, Json::Str(_)) {
            return Err(format!("argv[{i}] must be a string, got {a}"));
        }
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing or non-array key 'runs'".to_string())?;
    let mut last: Option<u64> = None;
    for (i, run) in runs.iter().enumerate() {
        let index = get_uint(run, "index").map_err(|e| format!("runs[{i}]: {e}"))?;
        get_str(run, "label").map_err(|e| format!("runs[{i}]: {e}"))?;
        get_str(run, "digest").map_err(|e| format!("runs[{i}]: {e}"))?;
        if run.get("record").is_none() {
            return Err(format!("runs[{i}]: missing key 'record'"));
        }
        if index >= total {
            return Err(format!(
                "runs[{i}]: index {index} out of range for total_runs {total}"
            ));
        }
        if let Some(prev) = last {
            if index <= prev {
                return Err(format!(
                    "runs[{i}]: indices must be strictly increasing ({prev} then {index})"
                ));
            }
        }
        last = Some(index);
    }
    Ok(())
}

/// Parses a shard-envelope document, schema-linting it first.
///
/// # Errors
///
/// Returns [`ShardError::Malformed`] with the lint's description.
pub fn parse_envelope(doc: &Json) -> Result<ShardEnvelope, ShardError> {
    lint_shard_json(doc).map_err(ShardError::Malformed)?;
    let runs: Vec<ShardRun> = doc
        .get("runs")
        .and_then(Json::as_array)
        .expect("linted")
        .iter()
        .map(|run| ShardRun {
            index: match run.get("index") {
                Some(Json::UInt(v)) => *v as usize,
                _ => unreachable!("linted"),
            },
            label: get_str(run, "label").expect("linted"),
            digest: get_str(run, "digest").expect("linted"),
            record: run.get("record").expect("linted").clone(),
        })
        .collect();
    Ok(ShardEnvelope {
        bin: get_str(doc, "bin").expect("linted"),
        shard: get_uint(doc, "shard").expect("linted"),
        shards: get_uint(doc, "shards").expect("linted"),
        total_runs: get_uint(doc, "total_runs").expect("linted") as usize,
        argv: doc
            .get("argv")
            .and_then(Json::as_array)
            .expect("linted")
            .iter()
            .map(|a| match a {
                Json::Str(s) => s.clone(),
                _ => unreachable!("linted"),
            })
            .collect(),
        runs: Vec::from_iter(runs),
    })
}

/// A fully validated, reassembled sweep: every record in global
/// submission order, ready for the bin's render replay.
#[derive(Debug, Clone)]
pub struct MergedSweep {
    /// Binary name.
    pub bin: String,
    /// The canonical argv shared by every envelope.
    pub argv: Vec<String>,
    /// `(label, record)` per run, indices `0..total_runs` in order.
    pub runs: Vec<(String, Json)>,
}

/// Validates `envelopes` against each other and reassembles the full
/// sweep in submission order.
///
/// Checks, in order (so each adversarial case fails with its own error):
/// agreement on bin / shard count / total / argv, shard ids in range and
/// unique, all `N` shards present, per-run digests intact, no run index
/// claimed twice, no run index missing.
///
/// # Errors
///
/// The first violated invariant as a [`ShardError`].
pub fn merge(envelopes: &[ShardEnvelope]) -> Result<MergedSweep, ShardError> {
    let first = envelopes
        .first()
        .ok_or_else(|| ShardError::Malformed("no envelopes given".to_string()))?;
    for e in &envelopes[1..] {
        if e.bin != first.bin {
            return Err(ShardError::BinMismatch(first.bin.clone(), e.bin.clone()));
        }
        if e.shards != first.shards {
            return Err(ShardError::ShardCountMismatch(first.shards, e.shards));
        }
        if e.total_runs != first.total_runs {
            return Err(ShardError::TotalMismatch(first.total_runs, e.total_runs));
        }
        if e.argv != first.argv {
            return Err(ShardError::ArgvMismatch(
                first.argv.join(" "),
                e.argv.join(" "),
            ));
        }
    }
    let n = first.shards;
    let mut seen_shards = vec![false; n as usize];
    for e in envelopes {
        if e.shard == 0 || e.shard > n {
            return Err(ShardError::ShardIdOutOfRange(e.shard, n));
        }
        let slot = &mut seen_shards[(e.shard - 1) as usize];
        if *slot {
            return Err(ShardError::DuplicateShard(e.shard));
        }
        *slot = true;
    }
    if let Some(k) = seen_shards.iter().position(|s| !s) {
        return Err(ShardError::MissingShard(k as u64 + 1, n));
    }
    for e in envelopes {
        for run in &e.runs {
            let got = run_digest(run.index, &run.label, &run.record);
            if got != run.digest {
                return Err(ShardError::DigestMismatch(
                    run.index,
                    run.digest.clone(),
                    got,
                ));
            }
        }
    }
    let total = first.total_runs;
    let mut owner: Vec<Option<u64>> = vec![None; total];
    let mut slots: Vec<Option<(String, Json)>> = vec![None; total];
    for e in envelopes {
        for run in &e.runs {
            // The lint bounds index < total_runs per envelope.
            if let Some(prev) = owner[run.index] {
                return Err(ShardError::OverlappingRun(run.index, prev, e.shard));
            }
            owner[run.index] = Some(e.shard);
            slots[run.index] = Some((run.label.clone(), run.record.clone()));
        }
    }
    if let Some(i) = owner.iter().position(Option::is_none) {
        return Err(ShardError::MissingRun(i));
    }
    Ok(MergedSweep {
        bin: first.bin.clone(),
        argv: first.argv.clone(),
        runs: slots.into_iter().map(|s| s.expect("all present")).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(shard: u64, shards: u64, indices: &[usize], total: usize) -> ShardEnvelope {
        ShardEnvelope {
            bin: "fig12".to_string(),
            shard,
            shards,
            total_runs: total,
            argv: vec!["--rows".to_string(), "512".to_string()],
            runs: indices
                .iter()
                .map(|&i| {
                    let record = Json::UInt(i as u64 * 10);
                    ShardRun {
                        index: i,
                        label: format!("run{i}"),
                        digest: run_digest(i, &format!("run{i}"), &record),
                        record,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrip_through_json_preserves_everything() {
        let e = envelope(2, 3, &[1, 4], 6);
        let doc = Json::parse(&e.to_json().to_string()).unwrap();
        lint_shard_json(&doc).unwrap();
        let back = parse_envelope(&doc).unwrap();
        assert_eq!(back.shard, 2);
        assert_eq!(back.shards, 3);
        assert_eq!(back.total_runs, 6);
        assert_eq!(back.argv, e.argv);
        assert_eq!(back.runs.len(), 2);
        assert_eq!(back.runs[1].index, 4);
        assert_eq!(back.runs[1].label, "run4");
        assert_eq!(back.runs[1].digest, e.runs[1].digest);
    }

    #[test]
    fn merge_reassembles_submission_order() {
        let merged = merge(&[
            envelope(2, 3, &[1, 3], 5),
            envelope(1, 3, &[0, 4], 5),
            envelope(3, 3, &[2], 5),
        ])
        .unwrap();
        assert_eq!(merged.bin, "fig12");
        let labels: Vec<&str> = merged.runs.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["run0", "run1", "run2", "run3", "run4"]);
        assert_eq!(merged.runs[3].1, Json::UInt(30));
    }

    #[test]
    fn each_invariant_fails_distinctly() {
        // Overlap: run 1 claimed twice.
        let e = merge(&[envelope(1, 2, &[0, 1], 4), envelope(2, 2, &[1, 2, 3], 4)]).unwrap_err();
        assert!(matches!(e, ShardError::OverlappingRun(1, 1, 2)), "{e}");
        // Gap: run 2 unclaimed.
        let e = merge(&[envelope(1, 2, &[0, 1], 4), envelope(2, 2, &[3], 4)]).unwrap_err();
        assert!(matches!(e, ShardError::MissingRun(2)), "{e}");
        // N-mismatch.
        let e = merge(&[envelope(1, 2, &[0, 1], 4), envelope(2, 3, &[2, 3], 4)]).unwrap_err();
        assert!(matches!(e, ShardError::ShardCountMismatch(2, 3)), "{e}");
        // Tampered digest.
        let mut bad = envelope(2, 2, &[2, 3], 4);
        bad.runs[0].record = Json::UInt(999);
        let e = merge(&[envelope(1, 2, &[0, 1], 4), bad]).unwrap_err();
        assert!(matches!(e, ShardError::DigestMismatch(2, _, _)), "{e}");
        // Duplicate shard id.
        let e = merge(&[envelope(1, 2, &[0, 1], 4), envelope(1, 2, &[2, 3], 4)]).unwrap_err();
        assert!(matches!(e, ShardError::DuplicateShard(1)), "{e}");
        // Missing shard.
        let e = merge(&[envelope(1, 2, &[0, 1], 4)]).unwrap_err();
        assert!(matches!(e, ShardError::MissingShard(2, 2)), "{e}");
        // Total mismatch.
        let e = merge(&[envelope(1, 2, &[0, 1], 4), envelope(2, 2, &[2], 3)]).unwrap_err();
        assert!(matches!(e, ShardError::TotalMismatch(4, 3)), "{e}");
    }

    #[test]
    fn argv_mismatch_is_its_own_error() {
        let a = envelope(1, 2, &[0, 1], 4);
        let mut b = envelope(2, 2, &[2, 3], 4);
        b.argv.push("--seed".to_string());
        let e = merge(&[a, b]).unwrap_err();
        assert!(matches!(e, ShardError::ArgvMismatch(_, _)), "{e}");
    }

    #[test]
    fn lint_rejects_schema_drift() {
        let mut doc = Json::parse(&envelope(1, 1, &[0], 1).to_json().to_string()).unwrap();
        lint_shard_json(&doc).unwrap();
        if let Json::Object(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "schema" {
                    *v = Json::UInt(99);
                }
            }
        }
        let e = lint_shard_json(&doc).unwrap_err();
        assert!(e.contains("schema 99"), "{e}");
    }

    #[test]
    fn lint_rejects_unsorted_and_out_of_range_indices() {
        let mut e = envelope(1, 1, &[1, 0], 3);
        let doc = Json::parse(&e.to_json().to_string()).unwrap();
        let msg = lint_shard_json(&doc).unwrap_err();
        assert!(msg.contains("strictly increasing"), "{msg}");
        e.runs.truncate(1);
        e.total_runs = 1;
        let doc = Json::parse(&e.to_json().to_string()).unwrap();
        let msg = lint_shard_json(&doc).unwrap_err();
        assert!(msg.contains("out of range"), "{msg}");
    }
}

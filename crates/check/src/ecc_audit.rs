//! Audits the chipkill codeword layouts of `sam-ecc`.
//!
//! Section 4's reliability argument rests on a structural property of the
//! burst layouts: every symbol bit of every codeword occupies **exactly
//! one** (beat, pin) slot, that slot belongs to the symbol's own chip, and
//! the four codewords together cover the 576-bit burst exactly once. A
//! layout violating any of these silently breaks the "chip failure = one
//! symbol per codeword" guarantee the decoders rely on.
//!
//! The auditor probes the scatter function bit by bit — it never inspects
//! the layout's implementation.

use sam_ecc::layout::{
    scatter_codewords, Burst, CodewordLayout, BEATS, CHIPS, CODEWORDS_PER_BURST, PINS,
    PINS_PER_CHIP,
};
use std::collections::BTreeMap;

/// One layout defect found by the auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccFault {
    /// Name of the audited layout.
    pub layout: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for EccFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.layout, self.detail)
    }
}

/// Bits per codeword symbol.
const SYMBOL_BITS: usize = 8;

/// Audits an arbitrary scatter function by probing one symbol bit at a
/// time and recording which (beat, pin) slots light up.
///
/// Checks, for every (codeword, chip, bit):
/// 1. exactly one burst slot carries the bit;
/// 2. the slot's pin belongs to the symbol's chip;
/// 3. across all probes, each of the `BEATS x PINS` slots is used exactly
///    once.
pub fn audit_scatter_fn<F>(name: &'static str, scatter: F) -> Vec<EccFault>
where
    F: Fn(&[[u8; CHIPS]; CODEWORDS_PER_BURST]) -> Burst,
{
    let mut faults = Vec::new();
    let mut slot_users: BTreeMap<(usize, usize), (usize, usize, usize)> = BTreeMap::new();
    for w in 0..CODEWORDS_PER_BURST {
        for chip in 0..CHIPS {
            for bit in 0..SYMBOL_BITS {
                let mut cws = [[0u8; CHIPS]; CODEWORDS_PER_BURST];
                cws[w][chip] = 1 << bit;
                let burst = scatter(&cws);
                let mut slots = Vec::new();
                for beat in 0..BEATS {
                    for pin in 0..PINS {
                        if burst.bit(beat, pin) {
                            slots.push((beat, pin));
                        }
                    }
                }
                if slots.len() != 1 {
                    faults.push(EccFault {
                        layout: name,
                        detail: format!(
                            "codeword {w} chip {chip} bit {bit} maps to {} slots, expected 1",
                            slots.len()
                        ),
                    });
                    continue;
                }
                let (beat, pin) = slots[0];
                if pin / PINS_PER_CHIP != chip {
                    faults.push(EccFault {
                        layout: name,
                        detail: format!(
                            "codeword {w} chip {chip} bit {bit} lands on pin {pin} \
                             (chip {}), crossing devices",
                            pin / PINS_PER_CHIP
                        ),
                    });
                }
                if let Some((pw, pc, pb)) = slot_users.insert((beat, pin), (w, chip, bit)) {
                    faults.push(EccFault {
                        layout: name,
                        detail: format!(
                            "slot (beat {beat}, pin {pin}) carries codeword {w} chip {chip} \
                             bit {bit} and codeword {pw} chip {pc} bit {pb}"
                        ),
                    });
                }
            }
        }
    }
    let expected = BEATS * PINS;
    if slot_users.len() != expected {
        faults.push(EccFault {
            layout: name,
            detail: format!(
                "burst coverage incomplete: {} of {expected} slots used",
                slot_users.len()
            ),
        });
    }
    faults
}

/// Audits one layout of `sam-ecc`.
///
/// `GatherNoEcc` has no complete-codeword representation, which the audit
/// reports as its defining fault (this is the point of Figure 4: the
/// GS-DRAM gather cannot co-fetch its parity symbols).
pub fn audit_layout(layout: CodewordLayout) -> Vec<EccFault> {
    match layout {
        CodewordLayout::BeatSpread => {
            audit_scatter_fn("BeatSpread", |cws| scatter_codewords(cws, layout))
        }
        CodewordLayout::Transposed => {
            audit_scatter_fn("Transposed", |cws| scatter_codewords(cws, layout))
        }
        CodewordLayout::GatherNoEcc => vec![EccFault {
            layout: "GatherNoEcc",
            detail: "parity symbols cannot be co-fetched; codewords are incomplete".into(),
        }],
    }
}

/// Audits both chipkill-capable layouts; an empty result means every data
/// and check symbol maps to exactly one device slot with no overlap.
pub fn audit_chipkill_layouts() -> Vec<EccFault> {
    let mut faults = audit_layout(CodewordLayout::BeatSpread);
    faults.extend(audit_layout(CodewordLayout::Transposed));
    faults
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_chipkill_layouts_are_clean() {
        let faults = audit_chipkill_layouts();
        assert!(faults.is_empty(), "{faults:?}");
    }

    #[test]
    fn gather_layout_reports_incompleteness() {
        let faults = audit_layout(CodewordLayout::GatherNoEcc);
        assert_eq!(faults.len(), 1);
        assert!(faults[0].detail.contains("incomplete"));
    }

    #[test]
    fn detects_bit_mapped_to_two_slots() {
        // A broken scatter that mirrors each BeatSpread bit onto beat 7.
        let faults = audit_scatter_fn("broken-dup", |cws| {
            let mut b = scatter_codewords(cws, CodewordLayout::BeatSpread);
            for pin in 0..PINS {
                if (0..BEATS - 1).any(|beat| b.bit(beat, pin)) {
                    b.set_bit(BEATS - 1, pin, true);
                }
            }
            b
        });
        assert!(
            faults.iter().any(|f| f.detail.contains("expected 1")),
            "{faults:?}"
        );
    }

    #[test]
    fn detects_cross_device_symbol() {
        // A broken scatter that shifts every bit one whole chip over,
        // so symbols land on the wrong device.
        let faults = audit_scatter_fn("broken-shift", |cws| {
            let clean = scatter_codewords(cws, CodewordLayout::BeatSpread);
            let mut b = Burst::new();
            for beat in 0..BEATS {
                for pin in 0..PINS {
                    if clean.bit(beat, pin) {
                        b.set_bit(beat, (pin + PINS_PER_CHIP) % PINS, true);
                    }
                }
            }
            b
        });
        assert!(
            faults.iter().any(|f| f.detail.contains("crossing devices")),
            "{faults:?}"
        );
    }

    #[test]
    fn detects_incomplete_coverage() {
        // A broken scatter that drops codeword 3 entirely.
        let faults = audit_scatter_fn("broken-drop", |cws| {
            let mut reduced = *cws;
            reduced[3] = [0; CHIPS];
            scatter_codewords(&reduced, CodewordLayout::BeatSpread)
        });
        assert!(
            faults
                .iter()
                .any(|f| f.detail.contains("0 slots") || f.detail.contains("coverage incomplete")),
            "{faults:?}"
        );
    }
}

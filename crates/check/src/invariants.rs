//! Structural invariants of the sectored cache model.
//!
//! These are properties every reachable state of `sam-cache` must satisfy,
//! checked from the outside through [`SetAssocCache::lines`]:
//!
//! * **dirty implies valid** — a dirty sector that was never filled would
//!   write back garbage;
//! * **no duplicate tags** — two ways of one set holding the same tag means
//!   lookups are ambiguous;
//! * **no empty valid line** — a valid line must carry at least one valid
//!   sector, otherwise it is dead occupancy the replacement policy can
//!   never justify.
//!
//! Inclusion is *not* an invariant of this hierarchy (fills bypass levels
//! and flushes are per-level), so [`check_hierarchy`] checks each level
//! independently; [`check_inclusion`] exists separately for inclusive
//! configurations and is expected to fire on this one.

use sam_cache::hierarchy::Hierarchy;
use sam_cache::set_assoc::{LineView, SetAssocCache};
use sam_cache::SECTORS_PER_LINE;
use std::collections::{BTreeMap, BTreeSet};

/// A cache invariant the checker can find violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheInvariant {
    /// A sector is dirty but not valid.
    DirtyNotValid,
    /// Two ways of the same set hold the same tag.
    DuplicateTag,
    /// A valid line with zero valid sectors.
    EmptyValidLine,
    /// A line cached in an upper level is absent from the level below
    /// (meaningful only for inclusive hierarchies).
    Inclusion,
}

impl CacheInvariant {
    /// Short name of the invariant.
    pub fn name(self) -> &'static str {
        match self {
            CacheInvariant::DirtyNotValid => "dirty-not-valid",
            CacheInvariant::DuplicateTag => "duplicate-tag",
            CacheInvariant::EmptyValidLine => "empty-valid-line",
            CacheInvariant::Inclusion => "inclusion",
        }
    }
}

/// One invariant violation, with enough context to locate the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheViolation {
    /// Cache level the violation was found in ("L1", "L2", "LLC").
    pub level: &'static str,
    /// The violated invariant.
    pub invariant: CacheInvariant,
    /// Byte address of the offending line.
    pub line_addr: u64,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for CacheViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: line {:#x}: {}",
            self.level,
            self.invariant.name(),
            self.line_addr,
            self.detail
        )
    }
}

/// Checks the per-line invariants over an explicit line set (the unit the
/// tests drive with synthetic [`LineView`]s).
pub fn check_lines(
    level: &'static str,
    lines: impl Iterator<Item = LineView>,
) -> Vec<CacheViolation> {
    let mut violations = Vec::new();
    let mut tags_by_set: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    for line in lines {
        if !tags_by_set.entry(line.set).or_default().insert(line.tag) {
            violations.push(CacheViolation {
                level,
                invariant: CacheInvariant::DuplicateTag,
                line_addr: line.line_addr,
                detail: format!("tag {:#x} appears twice in set {}", line.tag, line.set),
            });
        }
        if line.sectors.valid_count() == 0 {
            violations.push(CacheViolation {
                level,
                invariant: CacheInvariant::EmptyValidLine,
                line_addr: line.line_addr,
                detail: format!(
                    "valid line in set {} way {} has no valid sector",
                    line.set, line.way
                ),
            });
        }
        for sector in 0..SECTORS_PER_LINE {
            if line.sectors.is_dirty(sector) && !line.sectors.is_valid(sector) {
                violations.push(CacheViolation {
                    level,
                    invariant: CacheInvariant::DirtyNotValid,
                    line_addr: line.line_addr,
                    detail: format!("sector {sector} dirty but invalid"),
                });
            }
        }
    }
    violations
}

/// Checks one cache level.
pub fn check_cache(level: &'static str, cache: &SetAssocCache) -> Vec<CacheViolation> {
    check_lines(level, cache.lines())
}

/// Checks every level of the hierarchy (per-level invariants only — this
/// hierarchy is non-inclusive by design).
pub fn check_hierarchy(h: &Hierarchy) -> Vec<CacheViolation> {
    let mut v = check_cache("L1", h.l1());
    v.extend(check_cache("L2", h.l2()));
    v.extend(check_cache("LLC", h.llc()));
    v
}

/// Checks inclusion: every L1 line in L2, every L2 line in the LLC.
///
/// The SAM hierarchy is **non-inclusive**, so this is not part of
/// [`check_hierarchy`]; it is provided for inclusive configurations and as
/// a negative control in the tests.
pub fn check_inclusion(h: &Hierarchy) -> Vec<CacheViolation> {
    let mut violations = Vec::new();
    for (upper_name, upper, lower_name, lower) in
        [("L1", h.l1(), "L2", h.l2()), ("L2", h.l2(), "LLC", h.llc())]
    {
        let lower_lines: BTreeSet<u64> = lower.lines().map(|l| l.line_addr).collect();
        for line in upper.lines() {
            if !lower_lines.contains(&line.line_addr) {
                violations.push(CacheViolation {
                    level: upper_name,
                    invariant: CacheInvariant::Inclusion,
                    line_addr: line.line_addr,
                    detail: format!("line cached in {upper_name} but not in {lower_name}"),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_cache::sector::SectorState;

    fn view(set: usize, way: usize, tag: u64, sectors: SectorState) -> LineView {
        LineView {
            set,
            way,
            line_addr: (tag << 10) | (set as u64 * 64),
            tag,
            sectors,
            owner: 0,
        }
    }

    #[test]
    fn clean_lines_pass() {
        let lines = vec![
            view(0, 0, 1, SectorState::full()),
            view(0, 1, 2, SectorState::single(3)),
            view(1, 0, 1, SectorState::single(0)),
        ];
        assert!(check_lines("L1", lines.into_iter()).is_empty());
    }

    #[test]
    fn duplicate_tag_in_one_set_flagged() {
        let lines = vec![
            view(4, 0, 7, SectorState::full()),
            view(4, 1, 7, SectorState::full()),
        ];
        let v = check_lines("L2", lines.into_iter());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, CacheInvariant::DuplicateTag);
        assert_eq!(v[0].level, "L2");
    }

    #[test]
    fn same_tag_in_different_sets_is_fine() {
        let lines = vec![
            view(0, 0, 7, SectorState::full()),
            view(1, 0, 7, SectorState::full()),
        ];
        assert!(check_lines("L1", lines.into_iter()).is_empty());
    }

    #[test]
    fn empty_valid_line_flagged() {
        let v = check_lines("LLC", vec![view(0, 0, 3, SectorState::empty())].into_iter());
        assert!(v
            .iter()
            .any(|c| c.invariant == CacheInvariant::EmptyValidLine));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = check_lines("L1", vec![view(2, 1, 9, SectorState::empty())].into_iter());
        let s = v[0].to_string();
        assert!(s.contains("L1"), "{s}");
        assert!(s.contains("empty-valid-line"), "{s}");
    }
}

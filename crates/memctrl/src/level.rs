//! The composable memory-level interface (DESIGN.md §16).
//!
//! A [`MemLevel`] is one stage of a memory hierarchy as seen from above:
//! it admits tagged requests, delivers completions, exposes the
//! event-driven wake surface (`next_wake`/`advance_to`, DESIGN.md §13),
//! and passes observability attachments through to whatever devices it
//! drives. The flat FR-FCFS [`Controller`] is the base implementation;
//! composite topologies (the DRAM-cache front end in [`crate::hybrid`])
//! implement the same trait by delegating to inner levels, so the system
//! engine drives every topology through one surface.
//!
//! ## Wake contract
//!
//! A level *stores* only sparse, self-re-arming deadlines (rank refresh)
//! and *folds* everything dense — queued arrivals, bank ready times,
//! inner levels' wakes — at `next_wake` query time. Composite levels
//! store nothing themselves: they fold the minima of their inner levels,
//! so a stack of levels still answers `next_wake` in one pass and
//! spurious wakes stay possible while missed wakes stay impossible.
//!
//! ## Observability contract
//!
//! Attachments are forwarded, never duplicated: the trace sink and epoch
//! recorder go to the level's *front* (CPU-facing) controller so event
//! streams keep one clock domain, while command observers are per-device
//! — [`MemLevel::attach_observer`] taps the front device and
//! [`MemLevel::attach_backing_observer`] taps the backing device of a
//! composite level (a no-op on flat levels, which have none).

use sam_dram::device::DeviceStats;
use sam_dram::Cycle;
use sam_util::hist::Histogram;

use crate::controller::{Controller, ControllerStats, CoreLanes, QueueFull};
use crate::hybrid::HybridSummary;
use crate::request::{Completion, MemRequest};

/// One composable stage of the memory hierarchy (see the module docs).
///
/// `Send` is a supertrait so a boxed level can ride the bench harness's
/// sweep workers, same as the concrete controller always has.
pub trait MemLevel: Send {
    /// Whether a request of the given direction would be admitted now.
    fn can_accept(&self, is_write: bool) -> bool;

    /// Admits `req` at `arrival` (memory cycles).
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the level's admission queue for this direction
    /// is at capacity; the caller retries after a completion frees space.
    fn enqueue(&mut self, req: MemRequest, arrival: Cycle) -> Result<(), QueueFull>;

    /// Schedules and fully executes work until one *externally visible*
    /// completion is produced, or `None` when no queued work remains.
    fn schedule_one(&mut self, now: Cycle) -> Option<Completion>;

    /// The level's internal clock (last command issue time).
    fn clock(&self) -> Cycle;

    /// Number of admitted-but-unfinished requests (including any a
    /// composite level holds internally).
    fn queued(&self) -> usize;

    /// The earliest future cycle at which this level could make progress,
    /// folding stored deadlines, queued arrivals, device timing, and any
    /// inner levels' wakes. `None` means fully idle.
    fn next_wake(&mut self, now: Cycle) -> Option<Cycle>;

    /// Jumps the level's notion of time to `target`, servicing stored
    /// deadlines (refresh) at their original due cycles on the way.
    fn advance_to(&mut self, target: Cycle);

    /// Aggregate controller counters (summed over inner levels).
    fn stats(&self) -> ControllerStats;

    /// Per-(core, kind) lanes, telescoping to [`Self::stats`] (merged
    /// over inner levels; refreshes stay aggregate-only).
    fn per_core(&self) -> CoreLanes;

    /// Device command counts (summed over inner levels' devices).
    fn device_stats(&self) -> DeviceStats;

    /// Busy cycles on the CPU-facing data bus.
    fn bus_busy(&self) -> Cycle;

    /// End-to-end request-latency histogram as seen from above this level.
    fn latency_histogram(&self) -> &Histogram;

    /// Read-only slice of [`Self::latency_histogram`].
    fn read_latency_histogram(&self) -> &Histogram;

    /// Write-only slice of [`Self::latency_histogram`].
    fn write_latency_histogram(&self) -> &Histogram;

    /// Attaches a trace sink to the front (CPU-facing) controller.
    fn attach_trace(&mut self, sink: sam_trace::SharedSink);

    /// Attaches an epoch recorder to the front controller.
    fn attach_epochs(&mut self, epochs: sam_trace::SharedEpochs);

    /// Flushes the final partial epoch at end of run.
    fn finish_epochs(&mut self, now: Cycle);

    /// Attaches a command observer to the front device.
    #[cfg(feature = "check")]
    fn attach_observer(&mut self, observer: sam_dram::observe::SharedObserver);

    /// Attaches a command observer to the backing device of a composite
    /// level. Flat levels have no backing device and ignore the call.
    #[cfg(feature = "check")]
    fn attach_backing_observer(&mut self, observer: sam_dram::observe::SharedObserver) {
        let _ = observer;
    }

    /// Hybrid-topology counters, when this level is a DRAM-cache front
    /// end ([`crate::hybrid::DramCacheController`]); `None` on flat
    /// levels.
    fn hybrid_summary(&self) -> Option<HybridSummary> {
        None
    }
}

impl MemLevel for Controller {
    fn can_accept(&self, is_write: bool) -> bool {
        Controller::can_accept(self, is_write)
    }

    fn enqueue(&mut self, req: MemRequest, arrival: Cycle) -> Result<(), QueueFull> {
        Controller::enqueue(self, req, arrival)
    }

    fn schedule_one(&mut self, now: Cycle) -> Option<Completion> {
        Controller::schedule_one(self, now)
    }

    fn clock(&self) -> Cycle {
        Controller::clock(self)
    }

    fn queued(&self) -> usize {
        Controller::queued(self)
    }

    fn next_wake(&mut self, now: Cycle) -> Option<Cycle> {
        Controller::next_wake(self, now)
    }

    fn advance_to(&mut self, target: Cycle) {
        Controller::advance_to(self, target);
    }

    fn stats(&self) -> ControllerStats {
        *Controller::stats(self)
    }

    fn per_core(&self) -> CoreLanes {
        Controller::per_core(self).clone()
    }

    fn device_stats(&self) -> DeviceStats {
        *Controller::device_stats(self)
    }

    fn bus_busy(&self) -> Cycle {
        self.device().channel().busy_cycles
    }

    fn latency_histogram(&self) -> &Histogram {
        Controller::latency_histogram(self)
    }

    fn read_latency_histogram(&self) -> &Histogram {
        Controller::read_latency_histogram(self)
    }

    fn write_latency_histogram(&self) -> &Histogram {
        Controller::write_latency_histogram(self)
    }

    fn attach_trace(&mut self, sink: sam_trace::SharedSink) {
        Controller::attach_trace(self, sink);
    }

    fn attach_epochs(&mut self, epochs: sam_trace::SharedEpochs) {
        Controller::attach_epochs(self, epochs);
    }

    fn finish_epochs(&mut self, now: Cycle) {
        Controller::finish_epochs(self, now);
    }

    #[cfg(feature = "check")]
    fn attach_observer(&mut self, observer: sam_dram::observe::SharedObserver) {
        Controller::attach_observer(self, observer);
    }
}

//! DRAM-as-cache hybrid topology: a DDR4 front end caching a slower,
//! larger backing substrate (DESIGN.md §16).
//!
//! [`DramCacheController`] is the first composite [`MemLevel`]: it owns
//! two inner [`Controller`]s — a DDR4 *front* acting as a direct-mapped
//! block cache, and a *back* controller driving the design's substrate
//! (the RC-NVM RRAM store in fig16) — and translates each external
//! request into a chain of inner requests:
//!
//! * **hit** — one front access at the block's cache frame. Tags live in
//!   DRAM alongside the data (Alloy-style tag-and-data: the burst that
//!   moves the data also carries the tag), so a hit costs exactly one
//!   front access.
//! * **miss** — a front *tag-probe* read of the set frame (the access
//!   that discovers the miss), then, under writeback with a dirty
//!   victim, victim extraction as two dependent steps — front reads of
//!   the victim frame, then back writes of the victim block carried as
//!   [`ReqKind::Writeback`] lanes owned by the victim's installing core
//!   (the substrate writeback cannot start before the victim data has
//!   been read out of the cache) — then the block fill (back reads
//!   charged to the installing core) and the install (front writes).
//!   The external request completes critical-line-first: when the back
//!   read covering its line finishes, while the remaining install
//!   traffic drains in the background.
//! * **writethrough** — hits write both levels (the back write is
//!   [`ReqKind::Writeback`] traffic); write misses bypass the cache
//!   entirely (write-no-allocate) and complete on the back write.
//!
//! Functional cache state (tags, dirty bits, owners) is host-side
//! metadata updated *eagerly* at admission, so the hit/miss/victim
//! decision sequence is a pure function of the admitted request stream —
//! that is the contract the [`MirrorModel`] checks: an independent,
//! timing-free reimplementation of the same policy whose decision stream
//! must match the cycle-level controller's exactly.

use std::collections::{BTreeMap, VecDeque};

use sam_dram::device::{DeviceConfig, DeviceStats};
use sam_dram::Cycle;
use sam_util::hist::Histogram;

use crate::controller::{
    Controller, ControllerConfig, ControllerStats, CoreLanes, LaneStats, QueueFull,
};
use crate::level::MemLevel;
use crate::request::{Completion, MemRequest, Provenance, ReqKind};

/// Cache-line transfer unit within a block (one 64B burst).
pub const LINE_BYTES: u64 = 64;

/// Inner-request id space: the high bit marks ids minted by the hybrid
/// controller, so they can never collide with external ids from above.
const INNER_ID_BASE: u64 = 1 << 63;

/// What happens on writes (fig16's swept axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-allocate; dirty blocks written back to the substrate on
    /// eviction.
    Writeback,
    /// Write-no-allocate; every write is propagated to the substrate
    /// immediately and blocks are never dirty.
    Writethrough,
}

impl WritePolicy {
    /// Stable label used in fig16 output and CLI-facing docs.
    pub fn label(self) -> &'static str {
        match self {
            WritePolicy::Writeback => "writeback",
            WritePolicy::Writethrough => "writethrough",
        }
    }
}

/// Geometry and policy of the DRAM cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridConfig {
    /// Cache-block size in bytes (power of two, multiple of 64).
    pub block_bytes: u64,
    /// Total cache capacity in bytes (multiple of `block_bytes`).
    pub capacity_bytes: u64,
    /// Write policy.
    pub policy: WritePolicy,
    /// External transactions admitted concurrently (backpressure bound).
    pub max_transactions: usize,
    /// Record the per-request [`HybridDecision`] stream (mirror-test
    /// hook; off in production runs so memory stays bounded).
    pub log_decisions: bool,
}

impl HybridConfig {
    /// A cache of `block_bytes` blocks under `policy` with the default
    /// 1 MiB capacity and a 32-transaction admission window.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two multiple of 64.
    pub fn new(block_bytes: u64, policy: WritePolicy) -> Self {
        let cfg = Self {
            block_bytes,
            capacity_bytes: 1 << 20,
            policy,
            max_transactions: 32,
            log_decisions: false,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(
            self.block_bytes.is_power_of_two() && self.block_bytes >= LINE_BYTES,
            "block_bytes must be a power of two >= {LINE_BYTES}"
        );
        assert!(
            self.capacity_bytes >= self.block_bytes
                && self.capacity_bytes.is_multiple_of(self.block_bytes),
            "capacity must hold a whole number of blocks"
        );
        assert!(self.max_transactions > 0, "need at least one transaction");
    }

    /// Number of direct-mapped sets (frames).
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / self.block_bytes
    }

    /// Lines per block.
    pub fn lines_per_block(&self) -> u64 {
        self.block_bytes / LINE_BYTES
    }
}

/// The functional outcome of one external request, in admission order.
/// This is the decision stream the [`MirrorModel`] reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridDecision {
    /// Block-aligned external address.
    pub block: u64,
    /// Whether the external request was a write.
    pub is_write: bool,
    /// Tag match in the frame.
    pub hit: bool,
    /// A dirty victim was evicted (writeback policy misses only).
    pub dirty_evict: bool,
    /// A write was propagated straight to the substrate (writethrough).
    pub wrote_through: bool,
}

/// End-of-run hybrid counters surfaced through
/// [`MemLevel::hybrid_summary`] into `RunResult` (fig16's per-point
/// energy split needs the per-device command counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridSummary {
    /// External requests that hit the DRAM cache.
    pub hits: u64,
    /// External requests that missed.
    pub misses: u64,
    /// Block fills from the substrate (read-allocate misses).
    pub fills: u64,
    /// Dirty victim blocks written back to the substrate.
    pub dirty_evictions: u64,
    /// Writes propagated straight through to the substrate.
    pub writethroughs: u64,
    /// Front (DDR4 cache) device command counts.
    pub front: DeviceStats,
    /// Back (substrate) device command counts.
    pub back: DeviceStats,
}

impl HybridSummary {
    /// Hit fraction over all external requests (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Direct-mapped frame metadata (host-side; the in-DRAM tag copy is
/// modelled by the probe/access traffic, not stored twice).
#[derive(Debug, Clone, Copy)]
struct TagEntry {
    /// Block-aligned external base address cached in this frame.
    base: u64,
    dirty: bool,
    /// Core that installed (or last dirtied) the block; dirty-victim
    /// writeback traffic is attributed to it.
    owner: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    Front,
    Back,
}

/// One external request in flight: the released inner step, the chain of
/// unreleased steps, and the inner id whose completion surfaces the
/// external one.
#[derive(Debug)]
struct Txn {
    ext_id: u64,
    is_write: bool,
    arrival: Cycle,
    steps: VecDeque<Vec<(Dest, MemRequest)>>,
    outstanding: usize,
    /// Latest inner-completion finish seen so far; the next step's
    /// arrival anchor, so a step never starts before every request of
    /// the step it depends on has finished (completions may be
    /// processed out of timestamp order across the two inner
    /// controllers).
    step_finish: Cycle,
    terminal_id: u64,
    external_done: bool,
}

/// The unified DRAM-cache controller (see the module docs).
#[derive(Debug)]
pub struct DramCacheController {
    cfg: HybridConfig,
    front: Controller,
    back: Controller,
    tags: Vec<Option<TagEntry>>,
    txns: BTreeMap<u64, Txn>,
    inner_to_txn: BTreeMap<u64, u64>,
    /// Inner requests admitted to a full inner queue retry from here, in
    /// issue order (order is part of the determinism contract).
    backlog: VecDeque<(Dest, MemRequest, Cycle)>,
    next_inner_id: u64,
    open_externals: usize,
    hits: u64,
    misses: u64,
    fills: u64,
    dirty_evictions: u64,
    writethroughs: u64,
    decisions: Vec<HybridDecision>,
    latency_hist: Histogram,
    read_latency_hist: Histogram,
    write_latency_hist: Histogram,
}

impl DramCacheController {
    /// Builds the hybrid level: a DDR4-server front cache over a backing
    /// controller configured by `back_cfg` (the design's device plus any
    /// scheduler-knob overrides, which apply to the substrate side).
    pub fn new(back_cfg: ControllerConfig, cfg: HybridConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            front: Controller::new(ControllerConfig::with_device(DeviceConfig::ddr4_server())),
            back: Controller::new(back_cfg),
            tags: vec![None; cfg.sets() as usize],
            txns: BTreeMap::new(),
            inner_to_txn: BTreeMap::new(),
            backlog: VecDeque::new(),
            next_inner_id: INNER_ID_BASE,
            open_externals: 0,
            hits: 0,
            misses: 0,
            fills: 0,
            dirty_evictions: 0,
            writethroughs: 0,
            decisions: Vec::new(),
            latency_hist: Histogram::new(),
            read_latency_hist: Histogram::new(),
            write_latency_hist: Histogram::new(),
        }
    }

    /// The configured geometry and policy.
    pub fn hybrid_config(&self) -> &HybridConfig {
        &self.cfg
    }

    /// The recorded decision stream (empty unless
    /// [`HybridConfig::log_decisions`] is set).
    pub fn decisions(&self) -> &[HybridDecision] {
        &self.decisions
    }

    /// End-of-run counters (also reachable through the trait's
    /// [`MemLevel::hybrid_summary`]).
    pub fn summary(&self) -> HybridSummary {
        HybridSummary {
            hits: self.hits,
            misses: self.misses,
            fills: self.fills,
            dirty_evictions: self.dirty_evictions,
            writethroughs: self.writethroughs,
            front: *self.front.device_stats(),
            back: *self.back.device_stats(),
        }
    }

    fn fresh_inner_id(&mut self) -> u64 {
        self.next_inner_id += 1;
        self.next_inner_id
    }

    fn block_base(&self, addr: u64) -> u64 {
        addr & !(self.cfg.block_bytes - 1)
    }

    fn set_of(&self, block: u64) -> usize {
        ((block / self.cfg.block_bytes) % self.cfg.sets()) as usize
    }

    /// The front-DRAM address of this set's cache frame.
    fn frame_base(&self, set: usize) -> u64 {
        set as u64 * self.cfg.block_bytes
    }

    /// Admits one external request: decides hit/miss against the
    /// host-side tags (eagerly, so the decision stream is functional),
    /// builds the inner request chain, and releases its first step.
    fn admit(&mut self, ext: MemRequest, arrival: Cycle) {
        let block = self.block_base(ext.addr);
        let set = self.set_of(block);
        let frame = self.frame_base(set);
        let in_frame = frame + (ext.addr - block);
        let lines = self.cfg.lines_per_block();
        let critical_line = (ext.addr - block) / LINE_BYTES;

        let entry = self.tags[set];
        let hit = matches!(entry, Some(e) if e.base == block);
        let mut dirty_evict = false;
        let mut wrote_through = false;
        let mut steps: VecDeque<Vec<(Dest, MemRequest)>> = VecDeque::new();
        let terminal_id;

        if hit {
            self.hits += 1;
            let id = self.fresh_inner_id();
            terminal_id = id;
            let mut step = vec![(
                Dest::Front,
                MemRequest {
                    id,
                    addr: in_frame,
                    ..ext
                },
            )];
            if ext.is_write {
                match self.cfg.policy {
                    WritePolicy::Writeback => {
                        let e = self.tags[set].as_mut().expect("hit implies an entry");
                        e.dirty = true;
                        e.owner = ext.prov.core;
                    }
                    WritePolicy::Writethrough => {
                        wrote_through = true;
                        self.writethroughs += 1;
                        let tid = self.fresh_inner_id();
                        step.push((
                            Dest::Back,
                            MemRequest {
                                id: tid,
                                prov: Provenance::new(ext.prov.core, ReqKind::Writeback),
                                ..ext
                            },
                        ));
                    }
                }
            }
            steps.push_back(step);
        } else {
            self.misses += 1;
            // The tag probe: the front access that discovers the miss.
            let probe_id = self.fresh_inner_id();
            steps.push_back(vec![(
                Dest::Front,
                MemRequest::read(probe_id, frame).with_provenance(ext.prov),
            )]);

            let allocate = !(ext.is_write && self.cfg.policy == WritePolicy::Writethrough);
            if allocate {
                // Dirty victim extraction (writeback policy only).
                if let Some(victim) = entry {
                    if victim.dirty {
                        dirty_evict = true;
                        self.dirty_evictions += 1;
                        let prov = Provenance::new(victim.owner, ReqKind::Writeback);
                        // Two dependent steps: the victim data must be
                        // read out of the cache before its substrate
                        // writeback can issue.
                        let mut extract_reads = Vec::new();
                        for i in 0..lines {
                            let rid = self.fresh_inner_id();
                            extract_reads
                                .push((Dest::Front, MemRequest::read(rid, frame + i * LINE_BYTES)));
                        }
                        steps.push_back(extract_reads);
                        let mut extract_writes = Vec::new();
                        for i in 0..lines {
                            let wid = self.fresh_inner_id();
                            extract_writes.push((
                                Dest::Back,
                                MemRequest::write(wid, victim.base + i * LINE_BYTES)
                                    .with_provenance(prov),
                            ));
                        }
                        steps.push_back(extract_writes);
                    }
                }
                // Fill: back reads charged to the installing core; the
                // external request completes critical-line-first.
                self.fills += 1;
                let mut fill = Vec::new();
                let mut term = 0;
                for i in 0..lines {
                    let rid = self.fresh_inner_id();
                    if i == critical_line {
                        term = rid;
                    }
                    fill.push((
                        Dest::Back,
                        MemRequest::read(rid, block + i * LINE_BYTES).with_provenance(ext.prov),
                    ));
                }
                terminal_id = term;
                steps.push_back(fill);
                // Install into the frame.
                let mut install = Vec::new();
                for i in 0..lines {
                    let wid = self.fresh_inner_id();
                    install.push((
                        Dest::Front,
                        MemRequest::write(wid, frame + i * LINE_BYTES).with_provenance(ext.prov),
                    ));
                }
                steps.push_back(install);
                self.tags[set] = Some(TagEntry {
                    base: block,
                    dirty: ext.is_write && self.cfg.policy == WritePolicy::Writeback,
                    owner: ext.prov.core,
                });
            } else {
                // Write-no-allocate: the store goes straight through.
                wrote_through = true;
                self.writethroughs += 1;
                let tid = self.fresh_inner_id();
                terminal_id = tid;
                steps.push_back(vec![(
                    Dest::Back,
                    MemRequest {
                        id: tid,
                        prov: Provenance::new(ext.prov.core, ReqKind::Writeback),
                        ..ext
                    },
                )]);
            }
        }

        if self.cfg.log_decisions {
            self.decisions.push(HybridDecision {
                block,
                is_write: ext.is_write,
                hit,
                dirty_evict,
                wrote_through,
            });
        }

        let mut txn = Txn {
            ext_id: ext.id,
            is_write: ext.is_write,
            arrival,
            steps,
            outstanding: 0,
            step_finish: arrival,
            terminal_id,
            external_done: false,
        };
        for step in &txn.steps {
            for (_, req) in step {
                self.inner_to_txn.insert(req.id, ext.id);
            }
        }
        let first = txn.steps.pop_front().expect("every chain has a step");
        txn.outstanding = first.len();
        for (dest, req) in first {
            self.backlog.push_back((dest, req, arrival));
        }
        self.open_externals += 1;
        self.txns.insert(ext.id, txn);
        self.pump();
    }

    /// Retries backlogged inner requests in order, stopping at the first
    /// full queue (order preservation is part of determinism).
    fn pump(&mut self) {
        while let Some((dest, req, when)) = self.backlog.front().copied() {
            let admitted = match dest {
                Dest::Front => self.front.enqueue(req, when).is_ok(),
                Dest::Back => self.back.enqueue(req, when).is_ok(),
            };
            if !admitted {
                break;
            }
            self.backlog.pop_front();
        }
    }

    /// Consumes one inner completion: advances its transaction's chain
    /// and surfaces the external completion when the terminal inner
    /// request finishes.
    fn on_inner_completion(&mut self, c: Completion) -> Option<Completion> {
        let txn_id = self
            .inner_to_txn
            .remove(&c.id)
            .expect("inner completion must belong to a transaction");
        let txn = self.txns.get_mut(&txn_id).expect("transaction exists");
        txn.outstanding -= 1;
        txn.step_finish = txn.step_finish.max(c.finish);
        let mut external = None;
        if c.id == txn.terminal_id {
            txn.external_done = true;
            self.open_externals -= 1;
            let latency = c.finish.saturating_sub(txn.arrival);
            self.latency_hist.add(latency);
            if txn.is_write {
                self.write_latency_hist.add(latency);
            } else {
                self.read_latency_hist.add(latency);
            }
            external = Some(Completion {
                id: txn.ext_id,
                issue: c.issue,
                finish: c.finish,
                row_hit: c.row_hit,
            });
        }
        if txn.outstanding == 0 {
            if let Some(step) = txn.steps.pop_front() {
                txn.outstanding = step.len();
                // Anchor to the step's *latest* finish, not this
                // completion's: the two may differ when inner
                // completions were consumed out of timestamp order.
                let release = txn.step_finish;
                for (dest, req) in step {
                    self.backlog.push_back((dest, req, release));
                }
                self.pump();
            } else {
                debug_assert!(txn.external_done, "chain ended before its terminal");
                self.txns.remove(&txn_id);
            }
        }
        external
    }

    fn merged_lanes(&self) -> CoreLanes {
        let front = self.front.per_core();
        let back = self.back.per_core();
        let cores = front.cores().max(back.cores());
        let mut rows = Vec::with_capacity(cores);
        for core in 0..cores {
            let mut row = [LaneStats::default(); ReqKind::COUNT];
            for (slot, kind) in row.iter_mut().zip(ReqKind::ALL) {
                slot.accumulate(&front.lane(core as u8, kind));
                slot.accumulate(&back.lane(core as u8, kind));
            }
            rows.push(row);
        }
        CoreLanes::from_rows(rows)
    }
}

fn add_ctrl(a: ControllerStats, b: ControllerStats) -> ControllerStats {
    ControllerStats {
        row_hits: a.row_hits + b.row_hits,
        row_misses: a.row_misses + b.row_misses,
        row_conflicts: a.row_conflicts + b.row_conflicts,
        reads_done: a.reads_done + b.reads_done,
        writes_done: a.writes_done + b.writes_done,
        total_latency: a.total_latency + b.total_latency,
        refreshes: a.refreshes + b.refreshes,
        starvation_forced: a.starvation_forced + b.starvation_forced,
    }
}

fn add_device(a: DeviceStats, b: DeviceStats) -> DeviceStats {
    DeviceStats {
        acts: a.acts + b.acts,
        pres: a.pres + b.pres,
        reads: a.reads + b.reads,
        stride_reads: a.stride_reads + b.stride_reads,
        writes: a.writes + b.writes,
        stride_writes: a.stride_writes + b.stride_writes,
        refreshes: a.refreshes + b.refreshes,
        mode_switches: a.mode_switches + b.mode_switches,
    }
}

impl MemLevel for DramCacheController {
    fn can_accept(&self, _is_write: bool) -> bool {
        self.open_externals < self.cfg.max_transactions
    }

    fn enqueue(&mut self, req: MemRequest, arrival: Cycle) -> Result<(), QueueFull> {
        if self.open_externals >= self.cfg.max_transactions {
            return Err(QueueFull {
                write_queue: req.is_write,
            });
        }
        self.admit(req, arrival);
        Ok(())
    }

    fn schedule_one(&mut self, now: Cycle) -> Option<Completion> {
        loop {
            self.pump();
            // Serve whichever inner controller is further behind in
            // time, so inner completions are consumed in (approximate)
            // timestamp order; always draining one side first would let
            // a far-ahead front starve the back's earlier completions
            // and skew chained-step anchoring in composite runs.
            let front_first = self.front.clock() <= self.back.clock();
            let inner = if front_first {
                self.front
                    .schedule_one(now.max(self.front.clock()))
                    .or_else(|| self.back.schedule_one(now.max(self.back.clock())))
            } else {
                self.back
                    .schedule_one(now.max(self.back.clock()))
                    .or_else(|| self.front.schedule_one(now.max(self.front.clock())))
            }?;
            if let Some(ext) = self.on_inner_completion(inner) {
                return Some(ext);
            }
        }
    }

    fn clock(&self) -> Cycle {
        self.front.clock().max(self.back.clock())
    }

    fn queued(&self) -> usize {
        self.front.queued() + self.back.queued() + self.backlog.len()
    }

    fn next_wake(&mut self, now: Cycle) -> Option<Cycle> {
        self.pump();
        match (self.front.next_wake(now), self.back.next_wake(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn advance_to(&mut self, target: Cycle) {
        self.front.advance_to(target);
        self.back.advance_to(target);
    }

    fn stats(&self) -> ControllerStats {
        add_ctrl(*self.front.stats(), *self.back.stats())
    }

    fn per_core(&self) -> CoreLanes {
        self.merged_lanes()
    }

    fn device_stats(&self) -> DeviceStats {
        add_device(*self.front.device_stats(), *self.back.device_stats())
    }

    fn bus_busy(&self) -> Cycle {
        // The CPU-facing data bus is the front channel.
        self.front.device().channel().busy_cycles
    }

    fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    fn read_latency_histogram(&self) -> &Histogram {
        &self.read_latency_hist
    }

    fn write_latency_histogram(&self) -> &Histogram {
        &self.write_latency_hist
    }

    fn attach_trace(&mut self, sink: sam_trace::SharedSink) {
        // One clock domain per sink: the CPU-facing controller only.
        self.front.attach_trace(sink);
    }

    fn attach_epochs(&mut self, epochs: sam_trace::SharedEpochs) {
        self.front.attach_epochs(epochs);
    }

    fn finish_epochs(&mut self, now: Cycle) {
        self.front.finish_epochs(now);
    }

    #[cfg(feature = "check")]
    fn attach_observer(&mut self, observer: sam_dram::observe::SharedObserver) {
        self.front.attach_observer(observer);
    }

    #[cfg(feature = "check")]
    fn attach_backing_observer(&mut self, observer: sam_dram::observe::SharedObserver) {
        self.back.attach_observer(observer);
    }

    fn hybrid_summary(&self) -> Option<HybridSummary> {
        Some(self.summary())
    }
}

/// The pure functional reference model: same direct-mapped tag/dirty
/// policy as [`DramCacheController`], no timing, implemented
/// independently so a divergence means a real policy bug rather than a
/// shared one.
#[derive(Debug, Clone)]
pub struct MirrorModel {
    block_bytes: u64,
    sets: u64,
    policy: WritePolicy,
    /// `(block_base, dirty)` per frame.
    frames: Vec<Option<(u64, bool)>>,
    /// Counter mirror of [`HybridSummary`]'s decision-derived fields.
    pub hits: u64,
    /// External requests that missed.
    pub misses: u64,
    /// Block fills (allocating misses).
    pub fills: u64,
    /// Dirty victims evicted.
    pub dirty_evictions: u64,
    /// Writes propagated to the substrate.
    pub writethroughs: u64,
}

impl MirrorModel {
    /// A fresh (all-invalid) mirror of `cfg`'s cache.
    pub fn new(cfg: &HybridConfig) -> Self {
        Self {
            block_bytes: cfg.block_bytes,
            sets: cfg.sets(),
            policy: cfg.policy,
            frames: vec![None; cfg.sets() as usize],
            hits: 0,
            misses: 0,
            fills: 0,
            dirty_evictions: 0,
            writethroughs: 0,
        }
    }

    /// Applies one external access and returns the functional decision.
    pub fn access(&mut self, addr: u64, is_write: bool) -> HybridDecision {
        let block = addr & !(self.block_bytes - 1);
        let set = ((block / self.block_bytes) % self.sets) as usize;
        let frame = self.frames[set];
        let hit = matches!(frame, Some((base, _)) if base == block);
        let mut dirty_evict = false;
        let mut wrote_through = false;
        if hit {
            self.hits += 1;
            if is_write {
                match self.policy {
                    WritePolicy::Writeback => {
                        self.frames[set] = Some((block, true));
                    }
                    WritePolicy::Writethrough => {
                        wrote_through = true;
                        self.writethroughs += 1;
                    }
                }
            }
        } else {
            self.misses += 1;
            if is_write && self.policy == WritePolicy::Writethrough {
                wrote_through = true;
                self.writethroughs += 1;
            } else {
                if let Some((_, dirty)) = frame {
                    if dirty {
                        dirty_evict = true;
                        self.dirty_evictions += 1;
                    }
                }
                self.fills += 1;
                self.frames[set] = Some((block, is_write && self.policy == WritePolicy::Writeback));
            }
        }
        HybridDecision {
            block,
            is_write,
            hit,
            dirty_evict,
            wrote_through,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hybrid(policy: WritePolicy, block_bytes: u64) -> DramCacheController {
        let mut cfg = HybridConfig::new(block_bytes, policy);
        // Few sets so aliasing (and thus victims) shows up fast.
        cfg.capacity_bytes = block_bytes * 8;
        cfg.log_decisions = true;
        DramCacheController::new(
            ControllerConfig::with_device(DeviceConfig::rram_server()),
            cfg,
        )
    }

    /// Drives a `(addr, is_write)` stream to full completion, spacing
    /// arrivals a few cycles apart, and returns the controller.
    fn drive(mut h: DramCacheController, stream: &[(u64, bool)]) -> DramCacheController {
        let mut at = 0;
        for (i, &(addr, w)) in stream.iter().enumerate() {
            let id = i as u64 + 1;
            let req = if w {
                MemRequest::write(id, addr)
            } else {
                MemRequest::read(id, addr)
            };
            while MemLevel::enqueue(&mut h, req, at).is_err() {
                let now = MemLevel::clock(&h);
                MemLevel::schedule_one(&mut h, now).expect("full window implies pending work");
            }
            at += 4;
        }
        loop {
            let now = MemLevel::clock(&h);
            if MemLevel::schedule_one(&mut h, now).is_none() {
                break;
            }
        }
        assert_eq!(MemLevel::queued(&h), 0, "drain must empty the level");
        assert!(h.txns.is_empty(), "no transaction may be left open");
        h
    }

    #[test]
    fn miss_then_hit_same_block() {
        let h = drive(
            hybrid(WritePolicy::Writeback, 256),
            &[(0x40, false), (0x80, false)],
        );
        let s = h.summary();
        assert_eq!((s.misses, s.hits, s.fills), (1, 1, 1));
        assert_eq!(s.dirty_evictions, 0);
        // One probe + 4 fill reads + 4 installs + 1 hit access.
        assert_eq!(s.back.reads, 4);
        assert!(s.front.reads >= 2 && s.front.writes == 4);
    }

    #[test]
    fn dirty_victim_is_written_back_with_writeback_provenance() {
        let block = 256;
        let alias = block * 8; // same set, different tag
        let h = drive(
            hybrid(WritePolicy::Writeback, block),
            &[(0, true), (alias, false)],
        );
        let s = h.summary();
        assert_eq!(s.dirty_evictions, 1);
        // Victim extraction: 4 front reads + 4 back writes...
        assert_eq!(s.back.writes, 4);
        // ...attributed to the Writeback lane of the owning core.
        let lanes = h.merged_lanes();
        assert_eq!(lanes.lane(0, ReqKind::Writeback).writes_done, 4);
    }

    #[test]
    fn writethrough_never_dirties_and_propagates_writes() {
        let h = drive(
            hybrid(WritePolicy::Writethrough, 256),
            &[(0, false), (0, true), (4096, true)],
        );
        let s = h.summary();
        assert_eq!(s.dirty_evictions, 0);
        // Hit write propagates; miss write bypasses (no second fill).
        assert_eq!(s.writethroughs, 2);
        assert_eq!(s.fills, 1);
    }

    #[test]
    fn external_latency_histograms_cover_every_request() {
        let h = drive(
            hybrid(WritePolicy::Writeback, 128),
            &[(0, false), (64, true), (8192, false)],
        );
        assert_eq!(MemLevel::latency_histogram(&h).count(), 3);
        assert_eq!(MemLevel::read_latency_histogram(&h).count(), 2);
        assert_eq!(MemLevel::write_latency_histogram(&h).count(), 1);
    }

    #[test]
    fn lanes_telescope_to_summed_stats() {
        let h = drive(
            hybrid(WritePolicy::Writeback, 256),
            &[(0, true), (2048, false), (0, false), (2048 * 8, true)],
        );
        let stats = MemLevel::stats(&h);
        let total = MemLevel::per_core(&h).total();
        assert_eq!(total.reads_done, stats.reads_done);
        assert_eq!(total.writes_done, stats.writes_done);
        assert_eq!(total.total_latency, stats.total_latency);
    }

    #[test]
    fn hybrid_level_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DramCacheController>();
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let stream: Vec<(u64, bool)> = (0..200u64)
            .map(|i| (((i * 977) % 8192) & !7, i % 3 == 0))
            .collect();
        let a = drive(hybrid(WritePolicy::Writeback, 256), &stream);
        let b = drive(hybrid(WritePolicy::Writeback, 256), &stream);
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(MemLevel::clock(&a), MemLevel::clock(&b));
    }

    proptest! {
        /// The mirror contract: for any request stream, block size, and
        /// policy, the cycle-level controller's decision stream and
        /// derived counters are identical to the pure model's.
        #[test]
        fn mirror_decision_identity(
            stream in proptest::collection::vec((0u64..32768, any::<bool>()), 1..120),
            block_shift in 7u32..10,
            wb in any::<bool>(),
        ) {
            let policy = if wb { WritePolicy::Writeback } else { WritePolicy::Writethrough };
            let h = drive(hybrid(policy, 1 << block_shift), &stream);
            let mut mirror = MirrorModel::new(h.hybrid_config());
            let expect: Vec<HybridDecision> =
                stream.iter().map(|&(a, w)| mirror.access(a, w)).collect();
            prop_assert_eq!(h.decisions(), expect.as_slice());
            let s = h.summary();
            prop_assert_eq!(
                (s.hits, s.misses, s.fills, s.dirty_evictions, s.writethroughs),
                (mirror.hits, mirror.misses, mirror.fills,
                 mirror.dirty_evictions, mirror.writethroughs)
            );
        }
    }
}

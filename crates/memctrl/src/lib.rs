//! Memory controller for the SAM reproduction.
//!
//! Implements the controller of Table 2: open-page row policy, FR-FCFS
//! scheduling, a 32-entry write queue with drain watermarks, per-rank
//! refresh, and the `rw:rk:bk:ch:cl:offset` address mapping — plus the SAM
//! extensions: stride-mode requests that require an I/O mode switch (issued
//! as MRS commands costing tRTR, Section 5.3) and the Figure 10
//! virtual-to-physical bit remapping for stride-mode pages.
//!
//! # Example
//!
//! ```
//! use sam_memctrl::controller::{Controller, ControllerConfig};
//! use sam_memctrl::request::MemRequest;
//!
//! let mut ctrl = Controller::new(ControllerConfig::default());
//! ctrl.enqueue(MemRequest::read(1, 0x4040), 0).unwrap();
//! let done = ctrl.drain(0);
//! assert_eq!(done.len(), 1);
//! assert!(done[0].finish > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod hybrid;
pub mod level;
pub mod mapping;
pub mod request;
pub mod sched;
pub mod wake;

pub use sam_dram::Cycle;

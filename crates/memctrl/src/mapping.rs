//! Physical address mapping: `rw:rk:bk:ch:cl:offset` (Table 2) and the
//! Figure 10 stride-mode bit swap.
//!
//! With one channel, 2 ranks, 16 banks/rank and 128 cachelines per 8KB row,
//! a physical address decomposes (from the least-significant end) into a 6-bit
//! line offset, 7-bit column, 0-bit channel, 4-bit bank (2-bit group + 2-bit
//! bank), 1-bit rank, and the row above. Consecutive cachelines therefore
//! fill a row before moving to the next bank — the open-page-friendly layout
//! the paper's Table 2 names `rw:rk:bk:ch:cl:offset`.
//!
//! Under stride mode an access gathers `K` consecutive cachelines in one
//! burst, so the OS page must map onto the reshaped rows: Figure 10 swaps a
//! small segment of the page offset (2 bits for 8-bit-per-chip granularity,
//! 3 bits for 4-bit granularity) with the bits just above it. The swap is
//! provided here as an explicit, invertible function.

use sam_dram::device::DeviceConfig;

/// A fully decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Location {
    /// Rank index.
    pub rank: usize,
    /// Bank group within the rank.
    pub bank_group: usize,
    /// Bank within the group.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Cacheline-sized column within the row.
    pub col: u64,
    /// Byte offset within the cacheline.
    pub offset: u64,
}

/// Maps physical byte addresses onto the geometry of a [`DeviceConfig`]
/// using the `rw:rk:bk:ch:cl:offset` field order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddressMapper {
    line_bits: u32,
    col_bits: u32,
    bank_bits: u32,
    group_bits: u32,
    rank_bits: u32,
    rows_per_bank: u64,
}

impl AddressMapper {
    /// Builds a mapper for `config`.
    ///
    /// # Panics
    ///
    /// Panics if any geometry dimension is not a power of two (hardware
    /// address decoders require it).
    pub fn new(config: &DeviceConfig) -> Self {
        let pow2 = |v: u64, what: &str| -> u32 {
            assert!(v.is_power_of_two(), "{what} ({v}) must be a power of two");
            v.trailing_zeros()
        };
        Self {
            line_bits: 6, // 64B lines
            col_bits: pow2(config.cols_per_row, "cols_per_row"),
            bank_bits: pow2(config.banks_per_group as u64, "banks_per_group"),
            group_bits: pow2(config.bank_groups as u64, "bank_groups"),
            rank_bits: pow2(config.ranks as u64, "ranks"),
            rows_per_bank: config.rows_per_bank,
        }
    }

    /// Decodes a physical byte address.
    ///
    /// The bank/group/rank field is XORed with the low row bits
    /// (permutation-based page interleaving, standard in modern
    /// controllers) so that power-of-two-strided streams do not alias into
    /// one bank. Use [`bank_swizzle`] to pre-compensate when a layout needs
    /// to target a specific physical bank.
    pub fn decode(&self, addr: u64) -> Location {
        let mut a = addr;
        let take = |a: &mut u64, bits: u32| -> u64 {
            let v = *a & ((1u64 << bits) - 1);
            *a >>= bits;
            v
        };
        let offset = take(&mut a, self.line_bits);
        let col = take(&mut a, self.col_bits);
        // channel: 1 channel -> 0 bits
        let combined_bits = self.bank_bits + self.group_bits + self.rank_bits;
        let mut combined = take(&mut a, combined_bits);
        let row = a % self.rows_per_bank;
        combined ^= row & ((1u64 << combined_bits) - 1);
        let bank = (combined & ((1 << self.bank_bits) - 1)) as usize;
        let bank_group = ((combined >> self.bank_bits) & ((1 << self.group_bits) - 1)) as usize;
        let rank = (combined >> (self.bank_bits + self.group_bits)) as usize;
        Location {
            rank,
            bank_group,
            bank,
            row,
            col,
            offset,
        }
    }

    /// Encodes a location back into a physical byte address (inverse of
    /// [`Self::decode`] for in-range rows).
    pub fn encode(&self, loc: &Location) -> u64 {
        let combined_bits = self.bank_bits + self.group_bits + self.rank_bits;
        let mut combined = ((loc.rank as u64) << (self.bank_bits + self.group_bits))
            | ((loc.bank_group as u64) << self.bank_bits)
            | loc.bank as u64;
        combined ^= loc.row & ((1u64 << combined_bits) - 1);
        let mut a = loc.row;
        a = (a << combined_bits) | combined;
        a = (a << self.col_bits) | loc.col;
        (a << self.line_bits) | loc.offset
    }

    /// Number of bytes per row (all columns).
    pub fn row_bytes(&self) -> u64 {
        1u64 << (self.col_bits + self.line_bits)
    }

    /// Number of bytes covered by one bank before the mapping moves to the
    /// next bank.
    pub fn line_bytes(&self) -> u64 {
        1u64 << self.line_bits
    }
}

/// The controller's bank-permutation function: the bank-field value that,
/// combined with `row`, decodes to physical bank-field `target`. XOR is its
/// own inverse, so this both applies and removes the swizzle. `bits` is the
/// combined width of the bank+group+rank fields (5 for Table 2's geometry).
pub fn bank_swizzle(target: u64, row: u64, bits: u32) -> u64 {
    (target ^ row) & ((1u64 << bits) - 1)
}

/// The Figure 10 stride-mode page-offset remap.
///
/// Swaps the `seg_bits`-wide segment starting at bit 4 of the address (the
/// bits selecting which 16B strided unit within a gathered group) with the
/// segment immediately above it, so that an OS page still maps onto the
/// reshaped stride-mode rows. `seg_bits` is 2 for 8-bit-per-chip granularity
/// and 3 for 4-bit granularity (Section 5.2).
///
/// The function is an involution: applying it twice returns the original
/// address.
///
/// # Panics
///
/// Panics if `seg_bits` is not 2 or 3.
pub fn stride_page_remap(addr: u64, seg_bits: u32) -> u64 {
    assert!(
        seg_bits == 2 || seg_bits == 3,
        "segment is 2 or 3 bits (Figure 10)"
    );
    // Segment A: bits [4, 4+seg). Segment B: bits [4+seg, 4+2*seg).
    let mask = (1u64 << seg_bits) - 1;
    let a = (addr >> 4) & mask;
    let b = (addr >> (4 + seg_bits)) & mask;
    let cleared = addr & !((mask << 4) | (mask << (4 + seg_bits)));
    cleared | (b << 4) | (a << (4 + seg_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_dram::device::DeviceConfig;

    fn mapper() -> AddressMapper {
        AddressMapper::new(&DeviceConfig::ddr4_server())
    }

    #[test]
    fn decode_encode_roundtrip() {
        let m = mapper();
        for addr in [0u64, 64, 4096, 0xDEAD_BEC0, 0x1_0000_0000, 0x7FFF_FFC0] {
            let loc = m.decode(addr);
            assert_eq!(m.encode(&loc), addr, "addr {addr:#x}");
        }
    }

    #[test]
    fn consecutive_lines_fill_a_row() {
        // Open-page friendliness: the 128 lines of a row differ only in col.
        let m = mapper();
        let base = m.decode(0);
        for i in 1..128u64 {
            let loc = m.decode(i * 64);
            assert_eq!(loc.col, i);
            assert_eq!(
                (loc.rank, loc.bank_group, loc.bank, loc.row),
                (base.rank, base.bank_group, base.bank, base.row)
            );
        }
        // Line 128 moves to the next bank.
        let next = m.decode(128 * 64);
        assert_ne!((next.bank, next.bank_group), (base.bank, base.bank_group));
    }

    #[test]
    fn field_widths_match_table2_geometry() {
        let m = mapper();
        assert_eq!(m.row_bytes(), 8192); // 128 lines x 64B
        assert_eq!(m.line_bytes(), 64);
        // 16 banks x 2 ranks x 8KB = 256KB before the row increments; the
        // bank permutation XORs the combined bank field with the row.
        let loc = m.decode(256 * 1024);
        assert_eq!(loc.row, 1);
        assert_eq!((loc.rank, loc.bank_group, loc.bank, loc.col), (0, 0, 1, 0));
    }

    #[test]
    fn bank_permutation_spreads_row_strided_streams() {
        // Addresses 256KB apart (same bank field, consecutive rows) land in
        // different physical banks thanks to the XOR swizzle.
        let m = mapper();
        let banks: std::collections::HashSet<(usize, usize, usize)> = (0..8u64)
            .map(|i| {
                let l = m.decode(i * 256 * 1024);
                (l.rank, l.bank_group, l.bank)
            })
            .collect();
        assert!(
            banks.len() >= 8,
            "swizzle must de-alias row-strided streams"
        );
    }

    #[test]
    fn bank_swizzle_is_involution() {
        for row in 0..64u64 {
            for target in 0..32u64 {
                let emitted = bank_swizzle(target, row, 5);
                assert_eq!(bank_swizzle(emitted, row, 5), target);
            }
        }
    }

    #[test]
    fn rank_bit_sits_above_banks() {
        let m = mapper();
        // 16 banks x 8KB = 128KB spans rank 0's banks; the next 128KB is rank 1.
        let loc = m.decode(128 * 1024);
        assert_eq!(loc.rank, 1);
        assert_eq!(loc.row, 0);
    }

    #[test]
    fn offset_is_byte_within_line() {
        let m = mapper();
        let loc = m.decode(64 + 17);
        assert_eq!(loc.offset, 17);
        assert_eq!(loc.col, 1);
    }

    #[test]
    fn stride_remap_is_involution() {
        for seg in [2u32, 3] {
            for addr in [
                0u64,
                0x12345678,
                0xFFFF_FFFF_FFFF_FFFF,
                0xABCD_EF01_2345_6789,
            ] {
                assert_eq!(stride_page_remap(stride_page_remap(addr, seg), seg), addr);
            }
        }
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // grouped by remap segment, not nibble
    fn stride_remap_swaps_expected_bits() {
        // addr with segment A = 0b11 at bits [4,6) and B = 0b00 at [6,8).
        let addr = 0b0011_0000u64;
        let remapped = stride_page_remap(addr, 2);
        assert_eq!(remapped, 0b1100_0000);
        // 3-bit variant.
        let addr3 = 0b000_111_0000u64;
        assert_eq!(stride_page_remap(addr3, 3), 0b111_000_0000);
    }

    #[test]
    fn stride_remap_preserves_low_and_high_bits() {
        let addr = 0xFFFF_0000_0000_FF0Fu64;
        let r = stride_page_remap(addr, 3);
        assert_eq!(r & 0xF, addr & 0xF, "16B offset untouched");
        assert_eq!(
            r >> 10,
            addr >> 10,
            "bits above the swapped segments untouched"
        );
    }

    #[test]
    #[should_panic(expected = "segment is 2 or 3 bits")]
    fn stride_remap_rejects_other_widths() {
        stride_page_remap(0, 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_geometry_rejected() {
        let mut cfg = DeviceConfig::ddr4_server();
        cfg.cols_per_row = 100;
        AddressMapper::new(&cfg);
    }
}

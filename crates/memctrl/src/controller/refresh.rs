//! Refresh and wake bookkeeping: per-rank tREFI service, the stored
//! wheel entries, and the `next_wake`/`advance_to` event-core surface.

use super::*;

impl Controller {
    /// Issues due refreshes for every rank relative to `now`.
    pub(super) fn service_refresh(&mut self, now: Cycle) {
        if !self.cfg.refresh_enabled {
            return;
        }
        let _p = phase("refresh");
        let refi = self.cfg.device.timing.refi;
        let rfc = self.cfg.device.timing.rfc;
        // Refresh is rank-level background work with no owning request.
        self.device.set_command_origin(None);
        for rank in 0..self.cfg.device.ranks {
            while self.next_refresh[rank] <= now {
                let cmd = Command::refresh(rank);
                let at = self.device.earliest_issue(&cmd, self.next_refresh[rank]);
                self.device
                    .issue(&cmd, at)
                    .expect("refresh issue follows earliest_issue");
                self.stats.refreshes += 1;
                obs::CTRL_REFRESHES.add(1);
                self.trace.emit(TraceEvent::complete(
                    track::rank(rank),
                    Category::Ctrl,
                    "REF",
                    at,
                    rfc,
                    rank as u64,
                ));
                self.next_refresh[rank] += refi;
                // Re-arm this rank's wake entry at the new deadline.
                self.wheel
                    .push(self.next_refresh[rank], WakeSource::Refresh { rank });
            }
        }
    }

    /// The earliest cycle at which controller-side work can become
    /// actionable while the caller is otherwise idle: the minimum over
    /// the event-driven core's wake publishers (DESIGN.md §13) —
    ///
    /// * stored wheel entries (rank refresh deadlines),
    /// * the earliest queued arrival still in the future, and
    /// * the earliest bank timing gate still closed
    ///   ([`MemoryDevice::next_wake`]).
    ///
    /// The returned cycle may be `<= now` when a refresh is overdue (the
    /// caller should advance or schedule, which performs the catch-up).
    /// Superseded wheel entries — deadlines a catch-up already serviced —
    /// are discarded here, so the wheel is conservative: spurious wakes
    /// are possible, missed wakes are not.
    pub fn next_wake(&mut self, now: Cycle) -> Option<Cycle> {
        let refresh = loop {
            let head = self
                .wheel
                .peek()
                .map(|(at, &WakeSource::Refresh { rank })| (at, rank));
            match head {
                Some((at, rank)) => {
                    if at == self.next_refresh[rank] {
                        break Some(at);
                    }
                    self.wheel.pop();
                }
                None => break None,
            }
        };
        let arrival = self
            .readq
            .iter()
            .chain(self.writeq.iter())
            .map(|p| p.arrival)
            .filter(|&a| a > now)
            .min();
        let bank = self.device.next_wake(now);
        [refresh, arrival, bank].into_iter().flatten().min()
    }

    /// Event-driven idle jump: advances controller-side background work
    /// to `target` by consuming wheel wakes in deadline order. Each
    /// refresh wake is serviced at its *original* due cycle and re-arms
    /// itself one tREFI later, so a jump across many tREFI issues every
    /// intervening refresh exactly when a cycle-ticked simulation would
    /// have (jump-safety; pinned by the refresh catch-up tests).
    ///
    /// Safe to skip entirely: `execute` performs the same catch-up
    /// lazily before serving a request, so `advance_to` only moves
    /// *when* the background work is performed, never what is issued.
    pub fn advance_to(&mut self, target: Cycle) {
        loop {
            let head = self
                .wheel
                .peek()
                .map(|(at, &WakeSource::Refresh { rank })| (at, rank));
            match head {
                Some((at, rank)) if at <= target => {
                    self.wheel.pop();
                    // Entries whose deadline no longer matches were
                    // superseded by an earlier catch-up; drop them.
                    if at == self.next_refresh[rank] {
                        self.service_refresh(at);
                    }
                }
                _ => break,
            }
        }
    }
}

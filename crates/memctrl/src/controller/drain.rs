//! Scheduling and execution: FR-FCFS selection, the write-drain
//! latch, command execution against the device, and `drain`.

use super::*;

impl Controller {
    /// Picks the FR-FCFS winner within `queue` by projecting each request
    /// down to its policy-visible [`sched::SchedView`] (arrival, location,
    /// required mode — never provenance) and delegating to [`sched::select`].
    /// The closures hand the policy read-only access to the device's bank
    /// timing state and per-rank I/O mode.
    fn select(&mut self, write_queue: bool, now: Cycle) -> Option<(usize, bool)> {
        let _p = phase("sched-select");
        // Disjoint field borrows: the policy reads `device` through the
        // closures while the tournament mutates only its own workspace.
        let queue = if write_queue {
            &self.writeq
        } else {
            &self.readq
        };
        let device = &self.device;
        let views = queue.iter().map(|p| sched::SchedView {
            arrival: p.arrival,
            loc: p.loc,
            mode: p.req.required_mode(),
        });
        let est = |loc: Location, base: Cycle| {
            device.earliest_column_for_row(loc.rank, loc.bank_group, loc.bank, loc.row, base)
        };
        let mode = |rank: usize| device.io_mode(rank);
        let cap = self.cfg.starvation_cap;
        let trtr = self.cfg.device.timing.rtr;
        let d = if self.cfg.reference_scheduler {
            sched::select_reference(views, now, cap, trtr, est, mode)
        } else {
            sched::select(views, now, cap, trtr, est, mode, &mut self.scratch)
        }?;
        Some((d.index, d.starved))
    }

    /// Executes the full command sequence for `p`, returning its completion.
    fn execute(&mut self, p: Pending) -> Completion {
        let _p = phase("dram");
        self.service_refresh(self.clock.max(p.arrival));
        // Every command issued below (MRS/PRE/ACT plus the column access)
        // serves this request; stamp its origin for the observer fan-out.
        self.device.set_command_origin(Some(p.req.prov.core));
        let t = self.cfg.device.timing;
        let loc = p.loc;
        // Start from the request's own arrival: per-bank state machines and
        // the shared data bus already serialize where physics requires, so
        // a later-selected request's PRE/ACT may overlap earlier requests'
        // column phases (bank-level parallelism).
        let mut cursor = p.arrival;

        // I/O mode switch if needed (MRS; tRTR charged by the rank state).
        let want = p.req.required_mode();
        if self.device.io_mode(loc.rank) != want {
            let mrs = Command::mrs(loc.rank, want);
            let at = self.device.earliest_issue(&mrs, cursor);
            self.device.issue(&mrs, at).expect("MRS always issuable");
            cursor = at;
        }

        // Row state handling (open-page policy).
        let open = self.device.open_row(loc.rank, loc.bank_group, loc.bank);
        match open {
            Some(row) if row == loc.row => {
                self.stats.row_hits += 1;
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                let pre = Command::pre(loc.rank, loc.bank_group, loc.bank);
                let at = self.device.earliest_issue(&pre, cursor);
                self.device
                    .issue(&pre, at)
                    .expect("PRE follows earliest_issue");
                cursor = at;
                let act = Command::act(loc.rank, loc.bank_group, loc.bank, loc.row);
                let at = self.device.earliest_issue(&act, cursor);
                self.device
                    .issue(&act, at)
                    .expect("ACT follows earliest_issue");
                cursor = at;
            }
            None => {
                self.stats.row_misses += 1;
                let act = Command::act(loc.rank, loc.bank_group, loc.bank, loc.row);
                let at = self.device.earliest_issue(&act, cursor);
                self.device
                    .issue(&act, at)
                    .expect("ACT follows earliest_issue");
                cursor = at;
            }
        }

        // The column access itself.
        let stride = p.req.stride.is_some();
        let col_cmd = match (p.req.narrow, p.req.is_write) {
            (true, false) => Command::read_narrow(
                loc.rank,
                loc.bank_group,
                loc.bank,
                loc.row,
                loc.col,
                p.req.sub_lane(),
            ),
            (true, true) => Command::write_narrow(
                loc.rank,
                loc.bank_group,
                loc.bank,
                loc.row,
                loc.col,
                p.req.sub_lane(),
            ),
            (false, true) => {
                Command::write(loc.rank, loc.bank_group, loc.bank, loc.row, loc.col, stride)
            }
            (false, false) => {
                Command::read(loc.rank, loc.bank_group, loc.bank, loc.row, loc.col, stride)
            }
        };
        let at = self.device.earliest_issue(&col_cmd, cursor);
        let finish = self
            .device
            .issue(&col_cmd, at)
            .expect("column command follows earliest_issue");
        self.device.set_command_origin(None);
        self.clock = self.clock.max(at);

        // A completion earlier than its own arrival means the scheduler (or
        // device timing) produced an impossible ordering; fail loudly
        // instead of silently recording a zero-cycle latency that would
        // mask the bug and skew every latency statistic.
        debug_assert!(
            finish >= p.arrival,
            "request {} completed at {finish} before its arrival {}",
            p.req.id,
            p.arrival
        );
        let latency = finish
            .checked_sub(p.arrival)
            .expect("completion must not precede arrival");
        if p.req.is_write {
            self.stats.writes_done += 1;
            self.write_latency_hist.add(latency);
        } else {
            self.stats.reads_done += 1;
            self.read_latency_hist.add(latency);
        }
        self.stats.total_latency += latency;
        self.latency_hist.add(latency);
        // The per-(core, kind) lane mirrors every per-request aggregate
        // increment above (plus the row outcome), so lanes telescope.
        let lane = self.lanes.lane_mut(p.req.prov);
        match open {
            Some(row) if row == loc.row => lane.row_hits += 1,
            Some(_) => lane.row_conflicts += 1,
            None => lane.row_misses += 1,
        }
        if p.req.is_write {
            lane.writes_done += 1;
        } else {
            lane.reads_done += 1;
        }
        lane.total_latency += latency;
        let _ = t;
        self.trace.emit(TraceEvent::complete(
            track::REQUESTS,
            Category::Ctrl,
            if p.req.is_write { "write" } else { "read" },
            at,
            finish.saturating_sub(at),
            p.req.id,
        ));
        // Same service span again on the issuing core's lane, named by the
        // lowering path so Perfetto shows where each core's cycles go.
        self.trace.emit(TraceEvent::complete(
            track::core(p.req.prov.core),
            Category::Ctrl,
            p.req.prov.kind.label(),
            at,
            finish.saturating_sub(at),
            p.req.id,
        ));
        self.note_epoch(finish);
        Completion {
            id: p.req.id,
            issue: at,
            finish,
            row_hit: matches!(open, Some(r) if r == loc.row),
        }
    }

    /// Schedules and fully executes one request, FR-FCFS order, honouring
    /// the write-drain watermarks. Returns `None` when both queues are empty.
    pub fn schedule_one(&mut self, now: Cycle) -> Option<Completion> {
        // Watermark policy.
        let was_draining = self.draining_writes;
        self.draining_writes = sched::drain_latch(
            was_draining,
            self.writeq.len(),
            self.cfg.write_high_watermark,
            self.cfg.write_low_watermark,
        );
        if self.draining_writes != was_draining {
            let ev = if self.draining_writes {
                TraceEvent::begin(track::CTRL, Category::Ctrl, "write-drain", now)
            } else {
                TraceEvent::end(track::CTRL, Category::Ctrl, "write-drain", now)
            };
            self.trace.emit(ev);
        }
        let serve_writes = sched::serve_writes(
            self.readq.is_empty(),
            self.writeq.is_empty(),
            self.draining_writes,
        );
        let (queue_is_write, (idx, starved)) = if serve_writes {
            (true, self.select(true, now)?)
        } else {
            (false, self.select(false, now)?)
        };
        let pending = if queue_is_write {
            self.writeq.remove(idx).expect("index from select")
        } else {
            self.readq.remove(idx).expect("index from select")
        };
        if starved {
            self.stats.starvation_forced += 1;
            obs::CTRL_STARVED.add(1);
            self.lanes.lane_mut(pending.req.prov).starvation_forced += 1;
            self.trace.emit(TraceEvent::instant(
                track::CTRL,
                Category::Ctrl,
                "starved",
                now,
                pending.req.id,
            ));
        }
        Some(self.execute(pending))
    }

    /// Schedules until both queues are empty, returning all completions in
    /// execution order.
    pub fn drain(&mut self, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::with_capacity(self.queued());
        while let Some(c) = self.schedule_one(now.max(self.clock)) {
            done.push(c);
        }
        done
    }
}

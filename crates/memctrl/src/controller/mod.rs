//! The FR-FCFS open-page memory controller (Table 2).
//!
//! Scheduling model: among all queued requests, the controller estimates the
//! earliest cycle each could perform its column access (row hits need no
//! PRE/ACT and thus sort first — the "first-ready" half of FR-FCFS), breaking
//! ties by arrival order ("FCFS"). The chosen request's command sequence
//! (optional MRS mode switch, PRE on conflict, ACT, then RD/WR) is issued at
//! the earliest legal cycles against the device's timing state machines.
//!
//! Pure first-ready ordering can starve: an unbroken stream of row-hit
//! arrivals to an open row keeps outrunning an older request that needs a
//! PRE/ACT. The scheduler therefore carries a starvation cap
//! ([`ControllerConfig::starvation_cap`]): once the oldest queued request
//! has waited longer than the cap, it is scheduled next unconditionally,
//! bounding worst-case queueing delay at the cost of one row switch.
//!
//! Writes collect in a 32-entry write queue and drain in batches between the
//! high and low watermarks, as in real controllers; reads otherwise have
//! priority. Refresh is issued per rank every tREFI.

use std::collections::VecDeque;

use sam_dram::command::Command;
use sam_dram::device::{DeviceConfig, DeviceStats, MemoryDevice};
use sam_dram::Cycle;

use crate::mapping::{AddressMapper, Location};
use crate::request::{Completion, MemRequest, Provenance, ReqKind};
use crate::sched;
use crate::wake::TimeWheel;
use sam_obs::profile::phase;
use sam_obs::registry as obs;
use sam_trace::event::track;
use sam_trace::{Category, EpochCounters, SharedEpochs, SinkSlot, TraceEvent};
use sam_util::hist::Histogram;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Device geometry and timing.
    pub device: DeviceConfig,
    /// Write queue capacity (Table 2: 32).
    pub write_queue_capacity: usize,
    /// Start draining writes at this occupancy.
    pub write_high_watermark: usize,
    /// Stop draining at this occupancy.
    pub write_low_watermark: usize,
    /// Read queue capacity.
    pub read_queue_capacity: usize,
    /// Whether periodic refresh is issued (DRAM yes, RRAM no).
    pub refresh_enabled: bool,
    /// FR-FCFS starvation cap in memory cycles: once the oldest queued
    /// request has waited longer than this, it wins the next scheduling
    /// decision regardless of row-buffer state. Prevents an unbroken
    /// stream of younger row hits from starving an older row miss.
    pub starvation_cap: Cycle,
    /// Use the naive whole-queue scan ([`sched::select_reference`])
    /// instead of the group tournament for every scheduling decision.
    /// A differential-testing knob, not a policy change: the two
    /// implementations are exact equivalents, and the `sam-stress`
    /// matrix replays streams through both to prove it.
    pub reference_scheduler: bool,
}

impl ControllerConfig {
    /// Table 2 defaults over the given device.
    pub fn with_device(device: DeviceConfig) -> Self {
        let refresh_enabled = device.timing.needs_refresh();
        Self {
            device,
            write_queue_capacity: 32,
            write_high_watermark: 28,
            write_low_watermark: 8,
            read_queue_capacity: 96,
            refresh_enabled,
            starvation_cap: 4096,
            reference_scheduler: false,
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::with_device(DeviceConfig::ddr4_server())
    }
}

/// Why an `enqueue` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueFull {
    /// Whether it was the write queue (else the read queue).
    pub write_queue: bool,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queue full",
            if self.write_queue { "write" } else { "read" }
        )
    }
}

impl std::error::Error for QueueFull {}

/// Row-buffer outcome counters and latency accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Column accesses that hit the open row.
    pub row_hits: u64,
    /// Column accesses to a closed bank.
    pub row_misses: u64,
    /// Column accesses that required closing another row first.
    pub row_conflicts: u64,
    /// Completed reads (regular + stride).
    pub reads_done: u64,
    /// Completed writes (regular + stride).
    pub writes_done: u64,
    /// Sum over completions of (finish - arrival), for average latency.
    pub total_latency: u64,
    /// Refreshes issued.
    pub refreshes: u64,
    /// Scheduling decisions forced by the starvation cap: the oldest queued
    /// request had waited longer than [`ControllerConfig::starvation_cap`]
    /// and was served regardless of row-buffer state.
    pub starvation_forced: u64,
}

impl ControllerStats {
    /// Average request latency in cycles, if anything completed.
    pub fn avg_latency(&self) -> Option<f64> {
        let n = self.reads_done + self.writes_done;
        (n > 0).then(|| self.total_latency as f64 / n as f64)
    }

    /// Row-hit rate over all column accesses.
    pub fn row_hit_rate(&self) -> Option<f64> {
        let n = self.row_hits + self.row_misses + self.row_conflicts;
        (n > 0).then(|| self.row_hits as f64 / n as f64)
    }
}

/// One provenance lane's slice of the aggregate [`ControllerStats`].
///
/// Lanes cover every counter that is attributable to a single request:
/// row-buffer outcomes, completions, service latency, and starvation
/// firings. Refreshes are rank-level background work with no originating
/// request, so they stay aggregate-only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Column accesses that hit the open row.
    pub row_hits: u64,
    /// Column accesses to a closed bank.
    pub row_misses: u64,
    /// Column accesses that required closing another row first.
    pub row_conflicts: u64,
    /// Completed reads.
    pub reads_done: u64,
    /// Completed writes.
    pub writes_done: u64,
    /// Sum over completions of (finish - arrival).
    pub total_latency: u64,
    /// Scheduling decisions forced by the starvation cap.
    pub starvation_forced: u64,
}

impl LaneStats {
    /// Adds `other` field-wise.
    pub fn accumulate(&mut self, other: &LaneStats) {
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.reads_done += other.reads_done;
        self.writes_done += other.writes_done;
        self.total_latency += other.total_latency;
        self.starvation_forced += other.starvation_forced;
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == LaneStats::default()
    }
}

/// Per-core × per-kind stat lanes that telescope to the aggregate
/// [`ControllerStats`]: summing every lane reproduces the aggregate
/// counters exactly (minus `refreshes`, which no request owns). The lane
/// table grows on demand to the highest core id observed, so untagged
/// streams cost one 5-lane row for core 0 and nothing else.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreLanes {
    lanes: Vec<[LaneStats; ReqKind::COUNT]>,
}

impl CoreLanes {
    pub(super) fn lane_mut(&mut self, prov: Provenance) -> &mut LaneStats {
        let core = prov.core as usize;
        if core >= self.lanes.len() {
            self.lanes
                .resize(core + 1, [LaneStats::default(); ReqKind::COUNT]);
        }
        &mut self.lanes[core][prov.kind.index()]
    }

    /// Rebuilds the lane table from per-core rows in (core, kind-index)
    /// layout — the inverse of reading every [`Self::lane`] back out.
    /// Exists for deserialization (the sweep shard envelopes); simulation
    /// populates lanes only through request provenance.
    pub fn from_rows(rows: Vec<[LaneStats; ReqKind::COUNT]>) -> Self {
        Self { lanes: rows }
    }

    /// Number of core rows (highest observed core id + 1; 0 when idle).
    pub fn cores(&self) -> usize {
        self.lanes.len()
    }

    /// The lane for (`core`, `kind`); all-zero for cores never observed.
    pub fn lane(&self, core: u8, kind: ReqKind) -> LaneStats {
        self.lanes
            .get(core as usize)
            .map_or_else(LaneStats::default, |row| row[kind.index()])
    }

    /// Sum of all kinds for one core.
    pub fn core_total(&self, core: u8) -> LaneStats {
        let mut total = LaneStats::default();
        if let Some(row) = self.lanes.get(core as usize) {
            for lane in row {
                total.accumulate(lane);
            }
        }
        total
    }

    /// Sum over every (core, kind) lane — must equal the aggregate
    /// [`ControllerStats`] counters (the telescoping invariant).
    pub fn total(&self) -> LaneStats {
        let mut total = LaneStats::default();
        for row in &self.lanes {
            for lane in row {
                total.accumulate(lane);
            }
        }
        total
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: MemRequest,
    loc: Location,
    arrival: Cycle,
}

/// What a stored controller wake entry is for (DESIGN.md §13).
///
/// Only *sparse, self-re-arming* time-based publishers store entries in
/// the controller's [`TimeWheel`]: today that is rank refresh, whose
/// entry is re-armed one tREFI ahead at every issue. The other wake
/// publishers the event-driven core relies on are folded in at query
/// time by [`Controller::next_wake`] instead of being stored:
///
/// * **queued arrivals** and **bank timing gates** change on nearly
///   every command, so storing each change would cost a heap operation
///   per command for entries that are almost always superseded before
///   they fire — the fold recomputes the two minima on demand;
/// * the **write-drain hysteresis latch** is queue-depth-driven, not
///   time-driven: it can only flip at an enqueue or a completion, both
///   of which already re-enter the scheduler, so its wake is delivered
///   synchronously and it has no future cycle to publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WakeSource {
    /// Rank `rank`'s next refresh falls due at the entry's cycle.
    Refresh {
        /// The rank whose tREFI deadline this entry tracks.
        rank: usize,
    },
}

/// The memory controller: queues, FR-FCFS scheduler, refresh state, and the
/// owned [`MemoryDevice`].
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControllerConfig,
    device: MemoryDevice,
    mapper: AddressMapper,
    readq: VecDeque<Pending>,
    writeq: VecDeque<Pending>,
    draining_writes: bool,
    next_refresh: Vec<Cycle>,
    clock: Cycle,
    stats: ControllerStats,
    lanes: CoreLanes,
    latency_hist: Histogram,
    read_latency_hist: Histogram,
    write_latency_hist: Histogram,
    trace: SinkSlot,
    epochs: Option<SharedEpochs>,
    /// Reusable group-tournament workspace for [`sched::select`]; pure
    /// scratch, never part of the controller's semantic state.
    scratch: sched::SelectScratch,
    /// Stored wake entries (rank refresh deadlines; see [`WakeSource`]).
    wheel: TimeWheel<WakeSource>,
}

impl Controller {
    /// Creates an idle controller.
    pub fn new(cfg: ControllerConfig) -> Self {
        let device = MemoryDevice::new(cfg.device);
        let mapper = AddressMapper::new(&cfg.device);
        let refi = cfg.device.timing.refi;
        let next_refresh: Vec<Cycle> = (0..cfg.device.ranks)
            .map(|r| {
                if cfg.refresh_enabled {
                    refi + (r as u64 * refi / cfg.device.ranks as u64)
                } else {
                    u64::MAX
                }
            })
            .collect();
        // Seed the wheel with each rank's first refresh deadline; every
        // issue in `service_refresh` re-arms its rank one tREFI ahead.
        let mut wheel = TimeWheel::new();
        for (rank, &due) in next_refresh.iter().enumerate() {
            if due != u64::MAX {
                wheel.push(due, WakeSource::Refresh { rank });
            }
        }
        Self {
            cfg,
            device,
            mapper,
            readq: VecDeque::new(),
            writeq: VecDeque::new(),
            draining_writes: false,
            next_refresh,
            clock: 0,
            stats: ControllerStats::default(),
            lanes: CoreLanes::default(),
            latency_hist: Histogram::new(),
            read_latency_hist: Histogram::new(),
            write_latency_hist: Histogram::new(),
            trace: SinkSlot::default(),
            epochs: None,
            scratch: sched::SelectScratch::default(),
            wheel,
        }
    }

    /// Per-request latency histogram (arrival to last data beat).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Latency histogram over completed reads only.
    pub fn read_latency_histogram(&self) -> &Histogram {
        &self.read_latency_hist
    }

    /// Latency histogram over completed writes only.
    pub fn write_latency_histogram(&self) -> &Histogram {
        &self.write_latency_hist
    }

    /// Controller statistics.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Per-core × per-kind stat lanes (telescope to [`Self::stats`]).
    pub fn per_core(&self) -> &CoreLanes {
        &self.lanes
    }

    /// Device command counters (input of the power model).
    pub fn device_stats(&self) -> &DeviceStats {
        self.device.stats()
    }

    /// The owned device (e.g. for bus-utilization stats).
    pub fn device(&self) -> &MemoryDevice {
        &self.device
    }

    /// Attaches a command observer to the underlying device; every accepted
    /// command is reported to it (see [`sam_dram::observe`]).
    #[cfg(feature = "check")]
    pub fn attach_observer(&mut self, observer: sam_dram::observe::SharedObserver) {
        self.device.attach_observer(observer);
    }

    /// Attaches a trace sink; scheduling decisions (enqueues, write-drain
    /// windows, starvation firings, refresh windows, per-request service
    /// spans) are recorded as [`TraceEvent`]s. Purely observational: the
    /// schedule is identical with or without a sink.
    pub fn attach_trace(&mut self, sink: sam_trace::SharedSink) {
        self.trace.attach(sink);
    }

    /// Whether a trace sink is attached.
    pub fn trace_attached(&self) -> bool {
        self.trace.is_attached()
    }

    /// Attaches an epoch recorder; cumulative counters are sampled at every
    /// completion and folded into per-epoch delta rows.
    pub fn attach_epochs(&mut self, epochs: SharedEpochs) {
        self.epochs = Some(epochs);
    }

    /// Closes the final (partial) epoch at `now`. Call once at end of run;
    /// harmless when no epoch recorder is attached.
    pub fn finish_epochs(&mut self, now: Cycle) {
        if let Some(ep) = &self.epochs {
            let snap = self.epoch_snapshot();
            ep.lock()
                .expect("epoch recorder lock poisoned")
                .finish(now.max(self.clock), snap);
        }
    }

    /// Cumulative counter snapshot across controller, device, and data bus.
    fn epoch_snapshot(&self) -> EpochCounters {
        let s = &self.stats;
        let d = self.device.stats();
        EpochCounters {
            reads: s.reads_done,
            writes: s.writes_done,
            row_hits: s.row_hits,
            row_misses: s.row_misses,
            row_conflicts: s.row_conflicts,
            refreshes: s.refreshes,
            starved: s.starvation_forced,
            latency: s.total_latency,
            acts: d.acts,
            pres: d.pres,
            mode_switches: d.mode_switches,
            bus_busy: self.device.channel().busy_cycles,
        }
    }

    /// Samples cumulative counters into the epoch recorder at `now`.
    pub(super) fn note_epoch(&mut self, now: Cycle) {
        if let Some(ep) = &self.epochs {
            let snap = self.epoch_snapshot();
            ep.lock().expect("epoch recorder lock poisoned").tick(
                now,
                snap,
                self.readq.len() as u64,
                self.writeq.len() as u64,
            );
        }
    }

    /// The address mapper in use.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Internal scheduler clock (last command issue time).
    pub fn clock(&self) -> Cycle {
        self.clock
    }

    /// Number of queued requests (reads + writes).
    pub fn queued(&self) -> usize {
        self.readq.len() + self.writeq.len()
    }

    /// The active configuration (after any per-design or CLI overrides).
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }
}

mod drain;
mod queues;
mod refresh;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::StrideSpec;
    use sam_dram::timing::TimingParams;

    fn ctrl() -> Controller {
        Controller::new(ControllerConfig::default())
    }

    fn t() -> TimingParams {
        TimingParams::ddr4_2400()
    }

    #[test]
    fn single_read_latency_is_rcd_plus_cl_plus_burst() {
        let mut c = ctrl();
        c.enqueue(MemRequest::read(1, 0), 0).unwrap();
        let done = c.drain(0);
        assert_eq!(done.len(), 1);
        let t = t();
        assert_eq!(done[0].finish, t.rcd + t.cl + t.burst);
        assert!(!done[0].row_hit);
        assert_eq!(c.stats().row_misses, 1);
    }

    #[test]
    fn same_row_requests_hit() {
        let mut c = ctrl();
        c.enqueue(MemRequest::read(1, 0), 0).unwrap();
        c.enqueue(MemRequest::read(2, 64), 0).unwrap();
        c.enqueue(MemRequest::read(3, 128), 0).unwrap();
        let done = c.drain(0);
        assert_eq!(done.len(), 3);
        assert_eq!(c.stats().row_hits, 2);
        assert_eq!(c.stats().row_misses, 1);
        // Streaming reads pipeline at tCCD_L (same bank group): gaps of
        // ccd_l between column commands.
        let t = t();
        assert_eq!(done[1].issue - done[0].issue, t.ccd_l);
    }

    #[test]
    fn frfcfs_prefers_row_hit_over_older_conflict() {
        let mut c = ctrl();
        // First open row 0 (addr 0)..
        c.enqueue(MemRequest::read(1, 0), 0).unwrap();
        let _ = c.schedule_one(0).unwrap();
        // ..then queue an older conflicting request (row 1 of the same
        // physical bank: +256KB moves to row 1, and the +8KB bank-field
        // increment cancels the XOR permutation) and a newer row hit.
        let conflict_addr = 256 * 1024 + 8 * 1024;
        c.enqueue(MemRequest::read(2, conflict_addr), 1).unwrap();
        c.enqueue(MemRequest::read(3, 64), 2).unwrap();
        let first = c.schedule_one(0).unwrap();
        assert_eq!(first.id, 3, "row hit scheduled before older conflict");
        assert!(first.row_hit);
        let second = c.schedule_one(0).unwrap();
        assert_eq!(second.id, 2);
        assert_eq!(c.stats().row_conflicts, 1);
    }

    /// The fixed starvation bug: an unbroken stream of younger row hits
    /// used to outrank an older row-conflict read forever. With the cap,
    /// the old request is forced once its wait exceeds the threshold.
    #[test]
    fn starvation_cap_forces_oldest_row_miss() {
        let run = |cap: u64| -> Option<u64> {
            let cfg = ControllerConfig {
                starvation_cap: cap,
                ..Default::default()
            };
            let mut c = Controller::new(cfg);
            // Open row 0 of bank 0.
            c.enqueue(MemRequest::read(1, 0), 0).unwrap();
            let first = c.schedule_one(0).unwrap();
            // An old request that conflicts with the open row (row 1 of the
            // same physical bank, as in frfcfs_prefers_row_hit_over_older_conflict).
            let conflict_addr = 256 * 1024 + 8 * 1024;
            c.enqueue(MemRequest::read(2, conflict_addr), 1).unwrap();
            // Unbroken row-hit stream: keep exactly one younger hit queued.
            let mut now = first.finish;
            for i in 0u64..200 {
                let col = 1 + (i % 120);
                c.enqueue(MemRequest::read(1000 + i, col * 64), now)
                    .unwrap();
                let done = c.schedule_one(now).unwrap();
                now = now.max(done.finish);
                if done.id == 2 {
                    return Some(now);
                }
            }
            None
        };
        // Without a cap the conflict request starves for the whole stream.
        assert_eq!(run(u64::MAX), None, "row hits starve the conflict forever");
        // With the cap it is served shortly after its wait crosses the cap.
        let served_at = run(500).expect("starvation cap must force the old request");
        assert!(
            served_at < 1200,
            "forced request served far too late: {served_at}"
        );
    }

    /// Watermark hysteresis: a drain that starts at the high watermark must
    /// continue down to the low watermark (not stop as soon as it dips
    /// below high), and reads regain priority afterwards.
    #[test]
    fn write_drain_hysteresis_runs_high_to_low_watermark() {
        let mut c = ctrl(); // high = 28, low = 8 (Table 2 defaults)
        for i in 0..28 {
            c.enqueue(MemRequest::write(i, i * 64), 0).unwrap();
        }
        c.enqueue(MemRequest::read(100, 0x100000), 0).unwrap();
        let mut writes_before_read = 0;
        loop {
            let done = c.schedule_one(0).expect("requests queued");
            if done.id == 100 {
                break;
            }
            writes_before_read += 1;
            assert!(writes_before_read <= 20, "drain overshot the low watermark");
        }
        assert_eq!(
            writes_before_read, 20,
            "drain must continue from high (28) to low (8) watermark"
        );
        // The remaining 8 writes complete once the read queue is empty.
        assert_eq!(c.drain(0).len(), 8);
        assert_eq!(c.stats().writes_done, 28);
        assert_eq!(c.stats().reads_done, 1);
    }

    #[test]
    fn read_and_write_latency_histograms_are_split() {
        let mut c = ctrl();
        c.enqueue(MemRequest::read(1, 0), 0).unwrap();
        c.enqueue(MemRequest::read(2, 64), 0).unwrap();
        c.enqueue(MemRequest::write(3, 128), 0).unwrap();
        let _ = c.drain(0);
        assert_eq!(c.read_latency_histogram().count(), 2);
        assert_eq!(c.write_latency_histogram().count(), 1);
        assert_eq!(c.latency_histogram().count(), 3);
        let merged = c.read_latency_histogram().count() + c.write_latency_histogram().count();
        assert_eq!(merged, c.latency_histogram().count());
    }

    /// The sweep runner builds controllers inside worker threads; the run
    /// path must stay `Send` (observer hooks use `Arc<Mutex<..>>`).
    #[test]
    fn controller_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Controller>();
    }

    #[test]
    fn write_queue_capacity_enforced() {
        let mut c = ctrl();
        for i in 0..32 {
            c.enqueue(MemRequest::write(i, i * 64), 0).unwrap();
        }
        assert_eq!(
            c.enqueue(MemRequest::write(99, 0), 0),
            Err(QueueFull { write_queue: true })
        );
        assert!(c.can_accept(false));
        assert!(!c.can_accept(true));
    }

    #[test]
    fn reads_prioritized_until_write_watermark() {
        let mut c = ctrl();
        // 10 writes (below high watermark) + 1 read: read goes first.
        for i in 0..10 {
            c.enqueue(MemRequest::write(i, i * 64), 0).unwrap();
        }
        c.enqueue(MemRequest::read(100, 0x100000), 0).unwrap();
        let first = c.schedule_one(0).unwrap();
        assert_eq!(first.id, 100);
    }

    #[test]
    fn write_drain_kicks_in_at_high_watermark() {
        let mut c = ctrl();
        for i in 0..28 {
            c.enqueue(MemRequest::write(i, i * 64), 0).unwrap();
        }
        c.enqueue(MemRequest::read(100, 0x100000), 0).unwrap();
        let first = c.schedule_one(0).unwrap();
        assert_ne!(first.id, 100, "writes drain once above the high watermark");
    }

    #[test]
    fn stride_request_switches_mode_once() {
        let mut c = ctrl();
        let spec = StrideSpec::ssc();
        c.enqueue(MemRequest::stride_read(1, 0, spec), 0).unwrap();
        c.enqueue(MemRequest::stride_read(2, 4 * 64, spec), 0)
            .unwrap();
        let done = c.drain(0);
        assert_eq!(done.len(), 2);
        assert_eq!(c.device_stats().stride_reads, 2);
        assert_eq!(
            c.device_stats().mode_switches,
            1,
            "second request reuses the mode"
        );
    }

    #[test]
    fn mode_switch_costs_trtr() {
        let mut c = ctrl();
        let t = t();
        c.enqueue(MemRequest::stride_read(1, 0, StrideSpec::ssc()), 0)
            .unwrap();
        let done = c.drain(0);
        // MRS at 0, ACT at 0 (parallel on C/A in our model), column waits
        // for both tRCD and the mode-ready time; with tRCD > tRTR the RCD
        // dominates, so finish matches a regular read here.
        assert_eq!(done[0].finish, t.rcd.max(t.rtr) + t.cl + t.burst);
        // Switching back for a regular read pays tRTR again.
        c.enqueue(MemRequest::read(2, 64), done[0].finish).unwrap();
        let d2 = c.drain(done[0].finish);
        assert_eq!(c.device_stats().mode_switches, 2);
        assert!(d2[0].row_hit);
    }

    #[test]
    fn refresh_happens_every_trefi() {
        let mut c = ctrl();
        let t = t();
        // Schedule a read far past several refresh intervals.
        c.enqueue(MemRequest::read(1, 0), 4 * t.refi).unwrap();
        let _ = c.drain(4 * t.refi);
        assert!(
            c.stats().refreshes >= 4,
            "refreshes {} < 4",
            c.stats().refreshes
        );
    }

    #[test]
    fn rram_controller_skips_refresh() {
        let cfg = ControllerConfig::with_device(DeviceConfig::rram_server());
        assert!(!cfg.refresh_enabled);
        let mut c = Controller::new(cfg);
        c.enqueue(MemRequest::read(1, 0), 10_000_000).unwrap();
        let _ = c.drain(10_000_000);
        assert_eq!(c.stats().refreshes, 0);
    }

    #[test]
    fn stats_average_latency() {
        let mut c = ctrl();
        c.enqueue(MemRequest::read(1, 0), 0).unwrap();
        c.enqueue(MemRequest::read(2, 64), 0).unwrap();
        let done = c.drain(0);
        let expect: u64 = done.iter().map(|d| d.finish).sum();
        assert_eq!(c.stats().total_latency, expect);
        assert!(c.stats().avg_latency().unwrap() > 0.0);
        assert_eq!(c.stats().row_hit_rate().unwrap(), 0.5);
    }

    /// A starvation-cap firing must be counted, and the traced schedule
    /// must equal the untraced one (hooks are observational).
    #[test]
    fn starvation_firings_are_counted_and_traced() {
        use std::sync::{Arc, Mutex};
        let run = |trace: bool| -> (Vec<u64>, u64, Vec<sam_trace::TraceEvent>) {
            let cfg = ControllerConfig {
                starvation_cap: 500,
                ..Default::default()
            };
            let mut c = Controller::new(cfg);
            let ring = Arc::new(Mutex::new(sam_trace::RingRecorder::new(4096)));
            if trace {
                c.attach_trace(ring.clone());
                assert!(c.trace_attached());
            }
            c.enqueue(MemRequest::read(1, 0), 0).unwrap();
            let first = c.schedule_one(0).unwrap();
            let conflict_addr = 256 * 1024 + 8 * 1024;
            c.enqueue(MemRequest::read(2, conflict_addr), 1).unwrap();
            let mut order = Vec::new();
            let mut now = first.finish;
            for i in 0u64..50 {
                let col = 1 + (i % 120);
                c.enqueue(MemRequest::read(1000 + i, col * 64), now)
                    .unwrap();
                let done = c.schedule_one(now).unwrap();
                order.push(done.id);
                now = now.max(done.finish);
            }
            let starved = c.stats().starvation_forced;
            drop(c);
            let events = Arc::try_unwrap(ring)
                .expect("sole owner")
                .into_inner()
                .unwrap()
                .into_events()
                .0;
            (order, starved, events)
        };
        let (traced_order, starved, events) = run(true);
        let (plain_order, plain_starved, plain_events) = run(false);
        assert_eq!(traced_order, plain_order, "tracing must not alter schedule");
        assert_eq!(starved, plain_starved);
        assert!(starved >= 1, "cap at 500 must fire in this stream");
        assert!(plain_events.is_empty());
        let fired = events.iter().filter(|e| e.name == "starved").count() as u64;
        assert_eq!(fired, starved, "one instant per counted firing");
        assert!(events.iter().any(|e| e.name == "enq-read"));
        assert!(events.iter().any(|e| e.name == "read"));
    }

    /// Write-drain windows trace as balanced begin/end pairs in occurrence
    /// order (the exporter closes a final dangling begin, but a finished
    /// drain must close itself).
    #[test]
    fn write_drain_windows_trace_balanced() {
        use std::sync::{Arc, Mutex};
        let mut c = ctrl();
        let ring = Arc::new(Mutex::new(sam_trace::RingRecorder::new(4096)));
        c.attach_trace(ring.clone());
        for i in 0..28 {
            c.enqueue(MemRequest::write(i, i * 64), 0).unwrap();
        }
        c.enqueue(MemRequest::read(100, 0x100000), 0).unwrap();
        let _ = c.drain(0);
        drop(c);
        let events = Arc::try_unwrap(ring)
            .expect("sole owner")
            .into_inner()
            .unwrap()
            .into_events()
            .0;
        let drains: Vec<_> = events.iter().filter(|e| e.name == "write-drain").collect();
        assert_eq!(drains.len(), 2, "one drain window: begin + end");
        assert_eq!(drains[0].kind, sam_trace::EventKind::Begin);
        assert_eq!(drains[1].kind, sam_trace::EventKind::End);
        let refs: Vec<_> = events.iter().filter(|e| e.name == "REF").collect();
        for r in &refs {
            assert!(r.track >= sam_trace::event::track::RANK0);
        }
    }

    /// Epoch rows telescope: summed deltas equal the end-of-run snapshot.
    #[test]
    fn epoch_rows_sum_to_final_stats() {
        use std::sync::{Arc, Mutex};
        let mut c = ctrl();
        let epochs = Arc::new(Mutex::new(sam_trace::EpochRecorder::new(200)));
        c.attach_epochs(epochs.clone());
        for i in 0..40 {
            c.enqueue(MemRequest::read(i, i * 256), 0).unwrap();
        }
        for i in 0..24 {
            c.enqueue(MemRequest::write(100 + i, 0x40000 + i * 64), 0)
                .unwrap();
        }
        let done = c.drain(0);
        assert_eq!(done.len(), 64);
        let end = done.iter().map(|d| d.finish).max().unwrap();
        c.finish_epochs(end);
        let rec = epochs.lock().unwrap();
        let sum = rec.sum();
        assert!(rec.rows().len() > 1, "run spans several 200-cycle epochs");
        assert_eq!(sum.reads, c.stats().reads_done);
        assert_eq!(sum.writes, c.stats().writes_done);
        assert_eq!(sum.row_hits, c.stats().row_hits);
        assert_eq!(sum.latency, c.stats().total_latency);
        assert_eq!(sum.acts, c.device_stats().acts);
        assert_eq!(sum.bus_busy, c.device().channel().busy_cycles);
    }

    #[test]
    fn bank_parallelism_overlaps_activates() {
        let mut c = ctrl();
        let t = t();
        // Two reads to different banks: the second should not wait for the
        // first's full row cycle, only tRRD + bus serialization.
        c.enqueue(MemRequest::read(1, 0), 0).unwrap();
        c.enqueue(MemRequest::read(2, 8192), 0).unwrap(); // next bank
        let done = c.drain(0);
        let gap = done[1].finish - done[0].finish;
        assert!(
            gap <= t.ccd_s.max(t.burst) + t.rrd_s,
            "banks overlap, gap {gap}"
        );
    }

    /// Jump-safety of the refresh catch-up (the ISSUE's headline bug
    /// class): a read issued many tREFI after the last activity must see
    /// every intervening refresh issued at its *original* due cycle, not
    /// a collapsed burst at the read's arrival.
    #[test]
    fn refresh_catch_up_lands_on_original_due_cycles() {
        use std::sync::{Arc, Mutex};
        let mut c = ctrl();
        let ring = Arc::new(Mutex::new(sam_trace::RingRecorder::new(1 << 14)));
        c.attach_trace(ring.clone());
        let cfg = *c.config();
        let refi = cfg.device.timing.refi;
        let arrival = 10 * refi + 123;
        c.enqueue(MemRequest::read(1, 0), arrival).unwrap();
        let done = c.drain(arrival);
        assert_eq!(done.len(), 1);
        drop(c);
        let events = Arc::try_unwrap(ring)
            .expect("sole owner")
            .into_inner()
            .unwrap()
            .into_events()
            .0;
        // Reconstruct the expected deadline ladder per rank and compare
        // with the observed REF issue cycles, in order.
        for rank in 0..cfg.device.ranks {
            let observed: Vec<Cycle> = events
                .iter()
                .filter(|e| e.name == "REF" && e.arg == rank as u64)
                .map(|e| e.at)
                .collect();
            let mut expected = Vec::new();
            let mut due = refi + (rank as u64 * refi / cfg.device.ranks as u64);
            while due <= arrival {
                expected.push(due);
                due += refi;
            }
            assert_eq!(
                observed, expected,
                "rank {rank}: refreshes must issue at their original tREFI \
                 deadlines, never collapsed at the catch-up cycle"
            );
        }
    }

    /// The same long-idle read, reached two ways: ticking `advance_to`
    /// through every cycle of the gap, or jumping straight to the
    /// arrival and letting `execute` catch up lazily. Completion cycles,
    /// stats, and latency histograms must be identical (satellite: the
    /// event-driven path sees the same refresh penalty as a ticked run).
    #[test]
    fn read_after_long_idle_sees_same_refresh_penalty_ticked_or_jumped() {
        let t = t();
        let arrival = 4 * t.refi + 77;

        let mut ticked = ctrl();
        for now in 0..=arrival {
            ticked.advance_to(now);
        }
        ticked.enqueue(MemRequest::read(1, 0x40), arrival).unwrap();
        let a = ticked.drain(arrival);

        let mut jumped = ctrl();
        jumped.enqueue(MemRequest::read(1, 0x40), arrival).unwrap();
        let b = jumped.drain(arrival);

        assert_eq!(a, b, "completions must match cycle-for-cycle");
        assert_eq!(ticked.stats(), jumped.stats());
        // Count the staggered per-rank deadlines that fall inside the gap:
        // every one of them must have been serviced on both paths.
        let ranks = ticked.config().device.ranks;
        let mut ladder = 0u64;
        for rank in 0..ranks {
            let mut due = t.refi + (rank as u64 * t.refi / ranks as u64);
            while due <= arrival {
                ladder += 1;
                due += t.refi;
            }
        }
        assert!(ladder >= 4, "gap must span several deadlines, got {ladder}");
        assert!(
            ticked.stats().refreshes >= ladder,
            "the gap spans {ladder} refreshes, saw {}",
            ticked.stats().refreshes
        );
        assert_eq!(ticked.latency_histogram(), jumped.latency_histogram());
        assert_eq!(
            ticked.read_latency_histogram(),
            jumped.read_latency_histogram()
        );
    }

    #[test]
    fn next_wake_folds_refresh_arrivals_and_banks() {
        let t = t();
        let mut c = ctrl();
        let first_refresh = t.refi; // rank 0's first deadline
        assert_eq!(c.next_wake(0), Some(first_refresh));
        // A queued future arrival earlier than the refresh wins the fold.
        c.enqueue(MemRequest::read(1, 0), 500).unwrap();
        assert_eq!(c.next_wake(0), Some(500));
        // Arrivals at or before `now` are actionable, not wakes.
        assert_eq!(c.next_wake(500), Some(first_refresh));
        // After serving, the touched bank's earliest gate is the next
        // wake (its tRTP/tRAS window closes before the first refresh).
        let done = c.drain(500);
        let bank_wake = c.next_wake(500).expect("bank gates are closed");
        assert!(
            bank_wake > 500 && bank_wake < first_refresh,
            "bank wake {bank_wake} should precede refresh {first_refresh}"
        );
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn rram_controller_has_no_refresh_wakes() {
        let cfg = ControllerConfig::with_device(DeviceConfig::rram_server());
        assert!(!cfg.refresh_enabled);
        let mut c = Controller::new(cfg);
        assert_eq!(c.next_wake(0), None, "idle RRAM publishes nothing");
        c.advance_to(1_000_000_000);
        assert_eq!(c.stats().refreshes, 0);
    }

    /// The reference scan and the tournament must be indistinguishable
    /// end-to-end, not just per decision: same completions, stats, and
    /// lanes over a mixed read/write/stride workload.
    #[test]
    fn reference_scheduler_is_observationally_identical() {
        let mut mixed = Vec::new();
        for i in 0..48u64 {
            let addr = (i % 7) * 8192 + (i % 3) * 64;
            let req = match i % 4 {
                0 => MemRequest::read(i, addr),
                1 => MemRequest::write(i, addr + 0x40000),
                2 => MemRequest::stride_read(
                    i,
                    addr,
                    StrideSpec {
                        gather: 8,
                        mode: sam_dram::moderegs::IoMode::Sx4((i % 4) as u8),
                    },
                ),
                _ => MemRequest::read(i, addr + 0x100),
            };
            mixed.push((req, i * 3));
        }
        let run = |reference: bool| {
            let cfg = ControllerConfig {
                reference_scheduler: reference,
                ..ControllerConfig::default()
            };
            let mut c = Controller::new(cfg);
            for (req, arrival) in &mixed {
                c.enqueue(*req, *arrival).unwrap();
            }
            let done = c.drain(0);
            (done, *c.stats(), c.per_core().clone())
        };
        let (done_t, stats_t, lanes_t) = run(false);
        let (done_r, stats_r, lanes_r) = run(true);
        assert_eq!(done_t, done_r);
        assert_eq!(stats_t, stats_r);
        assert_eq!(lanes_t, lanes_r);
    }
}

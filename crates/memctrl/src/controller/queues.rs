//! Request admission: queue occupancy accessors, backpressure, and
//! `enqueue` (the controller's ingress edge).

use super::*;

impl Controller {
    /// Current read-queue occupancy.
    pub fn read_queue_len(&self) -> usize {
        self.readq.len()
    }

    /// Current write-queue occupancy.
    pub fn write_queue_len(&self) -> usize {
        self.writeq.len()
    }

    /// Whether the write-drain hysteresis latch is currently set (writes
    /// being served in preference to reads).
    pub fn draining_writes(&self) -> bool {
        self.draining_writes
    }

    /// Forward-progress probe: the age at `now` of the oldest queued
    /// request across both queues, or `None` when idle. An external
    /// harness can assert this never exceeds the starvation cap plus a
    /// drain-window bound; the controller itself only enforces the cap
    /// *within* the queue selected by the drain latch, so the combined
    /// bound is a property of the whole scheduler, not of `select()`.
    pub fn oldest_pending_age(&self, now: Cycle) -> Option<Cycle> {
        let oldest = |q: &VecDeque<Pending>| q.iter().map(|p| p.arrival).min();
        match (oldest(&self.readq), oldest(&self.writeq)) {
            (None, None) => None,
            (a, b) => {
                let arrival = a.into_iter().chain(b).min().expect("one side is Some");
                Some(now.saturating_sub(arrival))
            }
        }
    }

    /// Whether a read (or write) can currently be accepted.
    pub fn can_accept(&self, is_write: bool) -> bool {
        if is_write {
            self.writeq.len() < self.cfg.write_queue_capacity
        } else {
            self.readq.len() < self.cfg.read_queue_capacity
        }
    }

    /// Enqueues `req` arriving at cycle `arrival`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if the corresponding queue is at capacity; the
    /// caller should schedule work and retry.
    pub fn enqueue(&mut self, req: MemRequest, arrival: Cycle) -> Result<(), QueueFull> {
        if !self.can_accept(req.is_write) {
            return Err(QueueFull {
                write_queue: req.is_write,
            });
        }
        let loc = self.mapper.decode(req.addr);
        let pending = Pending { req, loc, arrival };
        if req.is_write {
            self.writeq.push_back(pending);
            obs::WRITEQ_DEPTH.observe(self.writeq.len());
        } else {
            self.readq.push_back(pending);
            obs::READQ_DEPTH.observe(self.readq.len());
        }
        obs::CTRL_REQUESTS.add(1);
        if self.trace.is_attached() {
            let (name, lane, depth) = if req.is_write {
                ("enq-write", track::WRITEQ, self.writeq.len())
            } else {
                ("enq-read", track::READQ, self.readq.len())
            };
            self.trace.emit(TraceEvent::instant(
                track::CTRL,
                Category::Ctrl,
                name,
                arrival,
                req.id,
            ));
            self.trace.emit(TraceEvent::counter(
                lane,
                Category::Ctrl,
                "depth",
                arrival,
                depth as u64,
            ));
        }
        Ok(())
    }
}

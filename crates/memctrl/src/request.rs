//! Memory requests as seen by the controller.
//!
//! A request is one burst on the channel: either a regular 64B line access
//! or a stride-mode access that gathers/scatters `gather` 16B (or 8B) units
//! from `gather` consecutive cachelines in one burst (Sections 4.2–4.4).
//! Multi-burst operations (e.g. GS-DRAM-ecc's extra ECC access) are issued
//! by the design lowering as multiple requests.

use sam_dram::moderegs::IoMode;
use sam_dram::Cycle;

/// Strided-access parameters attached to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrideSpec {
    /// How many consecutive cachelines the burst gathers from (4 at 8-bit
    /// per-chip granularity, 8 at 4-bit granularity — Section 4.4).
    pub gather: u8,
    /// Which stride I/O mode the rank must be in (lane select).
    pub mode: IoMode,
}

impl StrideSpec {
    /// The standard SSC (8-bit granularity) spec: gather 4, lane 0.
    pub fn ssc() -> Self {
        Self {
            gather: 4,
            mode: IoMode::Sx4(0),
        }
    }

    /// The SSC-DSD (4-bit granularity) spec of Section 4.4: gather 8.
    pub fn ssc_dsd() -> Self {
        Self {
            gather: 8,
            mode: IoMode::Sx4(0),
        }
    }
}

/// One memory request (one burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Caller-assigned identifier, echoed in the completion.
    pub id: u64,
    /// Physical byte address (of the first gathered line for strides).
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Stride parameters; `None` for a regular access.
    pub stride: Option<StrideSpec>,
    /// Narrow (sub-ranked, 16B) burst: occupies one channel sub-lane,
    /// selected by address bits [4, 6) (the AGMS/DGMS baselines).
    pub narrow: bool,
}

impl MemRequest {
    /// A regular 64B read.
    pub fn read(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_write: false,
            stride: None,
            narrow: false,
        }
    }

    /// A regular 64B write.
    pub fn write(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_write: true,
            stride: None,
            narrow: false,
        }
    }

    /// A stride-mode read.
    pub fn stride_read(id: u64, addr: u64, spec: StrideSpec) -> Self {
        Self {
            id,
            addr,
            is_write: false,
            stride: Some(spec),
            narrow: false,
        }
    }

    /// A stride-mode write.
    pub fn stride_write(id: u64, addr: u64, spec: StrideSpec) -> Self {
        Self {
            id,
            addr,
            is_write: true,
            stride: Some(spec),
            narrow: false,
        }
    }

    /// A narrow (sub-ranked) 16B read of the sector containing `addr`.
    pub fn narrow_read(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_write: false,
            stride: None,
            narrow: true,
        }
    }

    /// A narrow (sub-ranked) 16B write of the sector containing `addr`.
    pub fn narrow_write(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_write: true,
            stride: None,
            narrow: true,
        }
    }

    /// The channel sub-lane a narrow request uses (address bits [4, 6)).
    pub fn sub_lane(&self) -> u8 {
        ((self.addr >> 4) & 3) as u8
    }

    /// The I/O mode this request requires of its rank.
    pub fn required_mode(&self) -> IoMode {
        self.stride.map_or(IoMode::X4, |s| s.mode)
    }
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// Cycle the request's command issued.
    pub issue: Cycle,
    /// Cycle the last data beat finished on the bus.
    pub finish: Cycle,
    /// Whether the column access hit the open row.
    pub row_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = MemRequest::read(1, 0x40);
        assert!(!r.is_write && r.stride.is_none());
        assert_eq!(r.required_mode(), IoMode::X4);
        let w = MemRequest::stride_write(2, 0x80, StrideSpec::ssc());
        assert!(w.is_write);
        assert_eq!(w.stride.unwrap().gather, 4);
        assert!(w.required_mode().is_stride());
    }

    #[test]
    fn granularity_specs() {
        assert_eq!(StrideSpec::ssc().gather, 4);
        assert_eq!(StrideSpec::ssc_dsd().gather, 8);
    }

    #[test]
    fn narrow_requests_pick_their_sub_lane_from_the_address() {
        assert!(MemRequest::narrow_read(1, 0x30).narrow);
        assert_eq!(MemRequest::narrow_read(1, 0x00).sub_lane(), 0);
        assert_eq!(MemRequest::narrow_read(1, 0x10).sub_lane(), 1);
        assert_eq!(MemRequest::narrow_write(1, 0x20).sub_lane(), 2);
        assert_eq!(MemRequest::narrow_read(1, 0x75).sub_lane(), 3);
    }
}

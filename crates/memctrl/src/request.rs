//! Memory requests as seen by the controller.
//!
//! A request is one burst on the channel: either a regular 64B line access
//! or a stride-mode access that gathers/scatters `gather` 16B (or 8B) units
//! from `gather` consecutive cachelines in one burst (Sections 4.2–4.4).
//! Multi-burst operations (e.g. GS-DRAM-ecc's extra ECC access) are issued
//! by the design lowering as multiple requests.

use sam_dram::moderegs::IoMode;
use sam_dram::Cycle;

/// Strided-access parameters attached to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrideSpec {
    /// How many consecutive cachelines the burst gathers from (4 at 8-bit
    /// per-chip granularity, 8 at 4-bit granularity — Section 4.4).
    pub gather: u8,
    /// Which stride I/O mode the rank must be in (lane select).
    pub mode: IoMode,
}

impl StrideSpec {
    /// The standard SSC (8-bit granularity) spec: gather 4, lane 0.
    pub fn ssc() -> Self {
        Self {
            gather: 4,
            mode: IoMode::Sx4(0),
        }
    }

    /// The SSC-DSD (4-bit granularity) spec of Section 4.4: gather 8.
    pub fn ssc_dsd() -> Self {
        Self {
            gather: 8,
            mode: IoMode::Sx4(0),
        }
    }
}

/// Which lowering path produced a request. Purely descriptive: the
/// scheduler never reads it, so tagging a stream differently cannot
/// change timing — it only changes how completions are attributed in
/// per-core statistics lanes and trace lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReqKind {
    /// A demand fill a core is architecturally waiting on.
    #[default]
    Demand,
    /// A dirty-eviction writeback (regular or stride-combined).
    Writeback,
    /// A speculative next-line prefetch fill.
    Prefetch,
    /// An embedded-ECC code read/RMW burst (GS-DRAM-ecc).
    EccExtra,
    /// Fire-and-forget side traffic (e.g. RC-NVM-bit sub-field bursts).
    Traffic,
}

impl ReqKind {
    /// Number of kinds (the per-core lane fan-out width).
    pub const COUNT: usize = 5;

    /// All kinds, in lane-index order.
    pub const ALL: [ReqKind; Self::COUNT] = [
        ReqKind::Demand,
        ReqKind::Writeback,
        ReqKind::Prefetch,
        ReqKind::EccExtra,
        ReqKind::Traffic,
    ];

    /// Dense lane index in `0..COUNT`.
    pub fn index(self) -> usize {
        match self {
            ReqKind::Demand => 0,
            ReqKind::Writeback => 1,
            ReqKind::Prefetch => 2,
            ReqKind::EccExtra => 3,
            ReqKind::Traffic => 4,
        }
    }

    /// Stable lower-case label used in trace slices and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            ReqKind::Demand => "demand",
            ReqKind::Writeback => "writeback",
            ReqKind::Prefetch => "prefetch",
            ReqKind::EccExtra => "ecc",
            ReqKind::Traffic => "traffic",
        }
    }
}

/// Where a request came from: the issuing core and the lowering path.
///
/// Defaults to core 0 / [`ReqKind::Demand`], which is what the bare
/// constructors tag — single-stream callers (tests, the stress engine)
/// keep compiling unchanged while the system simulator stamps real
/// origins via [`MemRequest::with_provenance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Provenance {
    /// Issuing core (0-based).
    pub core: u8,
    /// Lowering path that produced the request.
    pub kind: ReqKind,
}

impl Provenance {
    /// Provenance for `core` and `kind`.
    pub fn new(core: u8, kind: ReqKind) -> Self {
        Self { core, kind }
    }

    /// A demand access from `core`.
    pub fn demand(core: u8) -> Self {
        Self::new(core, ReqKind::Demand)
    }
}

/// One memory request (one burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Caller-assigned identifier, echoed in the completion.
    pub id: u64,
    /// Physical byte address (of the first gathered line for strides).
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Stride parameters; `None` for a regular access.
    pub stride: Option<StrideSpec>,
    /// Narrow (sub-ranked, 16B) burst: occupies one channel sub-lane,
    /// selected by address bits [4, 6) (the AGMS/DGMS baselines).
    pub narrow: bool,
    /// Issuing core and lowering path (attribution only; never scheduled
    /// on).
    pub prov: Provenance,
}

impl MemRequest {
    /// A regular 64B read.
    pub fn read(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_write: false,
            stride: None,
            narrow: false,
            prov: Provenance::default(),
        }
    }

    /// A regular 64B write.
    pub fn write(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_write: true,
            stride: None,
            narrow: false,
            prov: Provenance::default(),
        }
    }

    /// A stride-mode read.
    pub fn stride_read(id: u64, addr: u64, spec: StrideSpec) -> Self {
        Self {
            id,
            addr,
            is_write: false,
            stride: Some(spec),
            narrow: false,
            prov: Provenance::default(),
        }
    }

    /// A stride-mode write.
    pub fn stride_write(id: u64, addr: u64, spec: StrideSpec) -> Self {
        Self {
            id,
            addr,
            is_write: true,
            stride: Some(spec),
            narrow: false,
            prov: Provenance::default(),
        }
    }

    /// A narrow (sub-ranked) 16B read of the sector containing `addr`.
    pub fn narrow_read(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_write: false,
            stride: None,
            narrow: true,
            prov: Provenance::default(),
        }
    }

    /// A narrow (sub-ranked) 16B write of the sector containing `addr`.
    pub fn narrow_write(id: u64, addr: u64) -> Self {
        Self {
            id,
            addr,
            is_write: true,
            stride: None,
            narrow: true,
            prov: Provenance::default(),
        }
    }

    /// Returns the request re-tagged with `prov` (builder style, so the
    /// positional constructors keep their signatures).
    pub fn with_provenance(mut self, prov: Provenance) -> Self {
        self.prov = prov;
        self
    }

    /// The channel sub-lane a narrow request uses (address bits [4, 6)).
    pub fn sub_lane(&self) -> u8 {
        ((self.addr >> 4) & 3) as u8
    }

    /// The I/O mode this request requires of its rank.
    pub fn required_mode(&self) -> IoMode {
        self.stride.map_or(IoMode::X4, |s| s.mode)
    }
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// Cycle the request's command issued.
    pub issue: Cycle,
    /// Cycle the last data beat finished on the bus.
    pub finish: Cycle,
    /// Whether the column access hit the open row.
    pub row_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = MemRequest::read(1, 0x40);
        assert!(!r.is_write && r.stride.is_none());
        assert_eq!(r.required_mode(), IoMode::X4);
        let w = MemRequest::stride_write(2, 0x80, StrideSpec::ssc());
        assert!(w.is_write);
        assert_eq!(w.stride.unwrap().gather, 4);
        assert!(w.required_mode().is_stride());
    }

    #[test]
    fn granularity_specs() {
        assert_eq!(StrideSpec::ssc().gather, 4);
        assert_eq!(StrideSpec::ssc_dsd().gather, 8);
    }

    #[test]
    fn provenance_defaults_and_rebinding() {
        let r = MemRequest::read(1, 0x40);
        assert_eq!(r.prov, Provenance::default());
        assert_eq!(r.prov.core, 0);
        assert_eq!(r.prov.kind, ReqKind::Demand);
        let tagged = r.with_provenance(Provenance::new(3, ReqKind::Writeback));
        assert_eq!(tagged.prov.core, 3);
        assert_eq!(tagged.prov.kind, ReqKind::Writeback);
        // Re-tagging never changes what the scheduler sees.
        assert_eq!((tagged.id, tagged.addr, tagged.is_write), (1, 0x40, false));
    }

    #[test]
    fn kind_lane_indices_are_dense_and_stable() {
        for (i, k) in ReqKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let labels: Vec<&str> = ReqKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            ["demand", "writeback", "prefetch", "ecc", "traffic"]
        );
    }

    #[test]
    fn narrow_requests_pick_their_sub_lane_from_the_address() {
        assert!(MemRequest::narrow_read(1, 0x30).narrow);
        assert_eq!(MemRequest::narrow_read(1, 0x00).sub_lane(), 0);
        assert_eq!(MemRequest::narrow_read(1, 0x10).sub_lane(), 1);
        assert_eq!(MemRequest::narrow_write(1, 0x20).sub_lane(), 2);
        assert_eq!(MemRequest::narrow_read(1, 0x75).sub_lane(), 3);
    }
}

//! The FR-FCFS scheduling *policy*, isolated from the controller datapath.
//!
//! Everything in this module is deliberately blind to request identity: a
//! queued request is visible to the policy only as a [`SchedView`] — its
//! arrival cycle, decoded bank [`Location`], and required [`IoMode`]. The
//! PR 5 invariant ("provenance is payload, never policy") is structural
//! here: this module cannot name provenance fields because its inputs do
//! not carry them, and the `sam-analyze` provenance-purity rule denies the
//! tokens outright in any `src/sched*` module. Scheduling decisions
//! therefore cannot depend on which core or lowering path issued a
//! request, which is what keeps per-core attribution observational.
//!
//! The policy has three parts, each a pure function over its arguments:
//!
//! - [`select`]: the FR-FCFS winner of one queue — earliest estimated
//!   column issue first (row hits sort first by construction), arrival
//!   order breaking ties, with the starvation cap overriding both.
//! - [`drain_latch`]: the write-drain hysteresis latch over the
//!   high/low watermarks.
//! - [`serve_writes`]: which queue the next decision comes from, given
//!   occupancies and the latch.

use sam_dram::moderegs::IoMode;
use sam_dram::Cycle;

use crate::mapping::Location;

/// The policy-visible projection of a queued request: *where* it goes and
/// *when* it arrived — never *who* issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedView {
    /// Cycle the request entered the queue.
    pub arrival: Cycle,
    /// Decoded device location.
    pub loc: Location,
    /// I/O mode the column access requires (stride accesses need a mode
    /// switch costing tRTR when the rank is in the other mode).
    pub mode: IoMode,
}

/// Outcome of one [`select`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Index of the winning request within the scanned queue.
    pub index: usize,
    /// Whether the starvation cap forced this pick (the oldest request had
    /// waited more than the cap, bypassing first-ready preference).
    pub starved: bool,
}

/// Picks the FR-FCFS winner among `queue`: requests are ranked by the
/// estimated earliest column-issue cycle (row hits first by construction),
/// with arrival order breaking ties. Requests whose required mode differs
/// from the rank's current mode are charged `trtr` in the estimate, which
/// makes the scheduler batch same-mode requests and amortize switches (the
/// controller behaviour Section 5.3 assumes).
///
/// Starvation guard: if the oldest request has already waited more than
/// `cap` cycles at `now`, it is returned directly — first-ready preference
/// must not delay any request unboundedly. [`Decision::starved`] reports
/// whether the guard fired, so the caller can count and trace cap firings.
///
/// Device state is reached only through the two closures (`earliest_column`
/// estimates the column-issue cycle for a location; `rank_mode` reports a
/// rank's current I/O mode), so the policy stays a pure function of its
/// visible inputs.
pub fn select(
    queue: impl Iterator<Item = SchedView>,
    now: Cycle,
    cap: Cycle,
    trtr: Cycle,
    mut earliest_column: impl FnMut(Location, Cycle) -> Cycle,
    mut rank_mode: impl FnMut(usize) -> IoMode,
) -> Option<Decision> {
    let mut oldest: Option<(Cycle, usize)> = None;
    let mut best: Option<(Cycle, Cycle, usize)> = None;
    for (i, v) in queue.enumerate() {
        if oldest.is_none_or(|(a, _)| v.arrival < a) {
            oldest = Some((v.arrival, i));
        }
        let base = now.max(v.arrival);
        let mut est = earliest_column(v.loc, base);
        if rank_mode(v.loc.rank) != v.mode {
            est += trtr;
        }
        if best.is_none_or(|(be, ba, _)| (est, v.arrival) < (be, ba)) {
            best = Some((est, v.arrival, i));
        }
    }
    let (oldest_arrival, oldest_idx) = oldest?;
    if now.saturating_sub(oldest_arrival) > cap {
        return Some(Decision {
            index: oldest_idx,
            starved: true,
        });
    }
    best.map(|(_, _, index)| Decision {
        index,
        starved: false,
    })
}

/// Advances the write-drain hysteresis latch: occupancy at or above `hi`
/// sets it (writes drain in a batch), occupancy at or below `lo` clears it
/// (reads regain priority). Between the watermarks the latch holds its
/// previous state — that hysteresis is what batches writes instead of
/// thrashing the bus turnaround on every enqueue.
pub fn drain_latch(current: bool, writeq_len: usize, hi: usize, lo: usize) -> bool {
    let mut latch = current;
    if writeq_len >= hi {
        latch = true;
    }
    if writeq_len <= lo {
        latch = false;
    }
    latch
}

/// Which queue the next scheduling decision serves: an empty side never
/// wins, otherwise the drain latch decides.
pub fn serve_writes(readq_empty: bool, writeq_empty: bool, draining: bool) -> bool {
    if readq_empty {
        !writeq_empty
    } else if writeq_empty {
        false
    } else {
        draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(arrival: Cycle, row: u64) -> SchedView {
        SchedView {
            arrival,
            loc: Location {
                row,
                ..Location::default()
            },
            mode: IoMode::X4,
        }
    }

    /// An estimate that charges 10 cycles unless the row is 7 ("open").
    fn est(loc: Location, base: Cycle) -> Cycle {
        base + if loc.row == 7 { 0 } else { 10 }
    }

    #[test]
    fn row_hit_beats_older_miss() {
        let q = [view(0, 1), view(5, 7)];
        let d = select(q.into_iter(), 6, 100, 2, est, |_| IoMode::X4).unwrap();
        assert_eq!(
            d,
            Decision {
                index: 1,
                starved: false
            }
        );
    }

    #[test]
    fn arrival_breaks_estimate_ties() {
        let q = [view(3, 1), view(1, 1)];
        let d = select(q.into_iter(), 4, 100, 2, est, |_| IoMode::X4).unwrap();
        assert_eq!(d.index, 1);
    }

    #[test]
    fn starvation_cap_overrides_row_hits() {
        let q = [view(0, 1), view(200, 7)];
        let d = select(q.into_iter(), 150, 100, 2, est, |_| IoMode::X4).unwrap();
        assert_eq!(
            d,
            Decision {
                index: 0,
                starved: true
            }
        );
    }

    #[test]
    fn mode_mismatch_charges_trtr() {
        // Same arrival and row state; request 0 needs a stride mode the
        // rank is not in, so tRTR tips the estimate toward request 1.
        let mut q = [view(0, 7), view(0, 7)];
        q[0].mode = IoMode::Sx4(0);
        let d = select(q.into_iter(), 0, 100, 2, est, |_| IoMode::X4).unwrap();
        assert_eq!(d.index, 1);
    }

    #[test]
    fn empty_queue_selects_nothing() {
        assert!(select([].into_iter(), 0, 100, 2, est, |_| IoMode::X4).is_none());
    }

    #[test]
    fn latch_hysteresis_holds_between_watermarks() {
        assert!(drain_latch(false, 28, 28, 8));
        assert!(drain_latch(true, 15, 28, 8), "holds between watermarks");
        assert!(!drain_latch(false, 15, 28, 8), "holds when clear too");
        assert!(!drain_latch(true, 8, 28, 8));
    }

    #[test]
    fn queue_choice_never_picks_an_empty_side() {
        assert!(!serve_writes(false, true, true));
        assert!(serve_writes(true, false, false));
        assert!(!serve_writes(true, true, true));
        assert!(serve_writes(false, false, true));
        assert!(!serve_writes(false, false, false));
    }
}

//! The FR-FCFS scheduling *policy*, isolated from the controller datapath.
//!
//! Everything in this module is deliberately blind to request identity: a
//! queued request is visible to the policy only as a [`SchedView`] — its
//! arrival cycle, decoded bank [`Location`], and required [`IoMode`]. The
//! PR 5 invariant ("provenance is payload, never policy") is structural
//! here: this module cannot name provenance fields because its inputs do
//! not carry them, and the `sam-analyze` provenance-purity rule denies the
//! tokens outright in any `src/sched*` module. Scheduling decisions
//! therefore cannot depend on which core or lowering path issued a
//! request, which is what keeps per-core attribution observational.
//!
//! The policy has three parts, each a pure function over its arguments:
//!
//! - [`select`]: the FR-FCFS winner of one queue — earliest estimated
//!   column issue first (row hits sort first by construction), arrival
//!   order breaking ties, with the starvation cap overriding both.
//! - [`drain_latch`]: the write-drain hysteresis latch over the
//!   high/low watermarks.
//! - [`serve_writes`]: which queue the next decision comes from, given
//!   occupancies and the latch.

use sam_dram::moderegs::IoMode;
use sam_dram::Cycle;

// Observability is write-only in this module: counters are bumped, never
// read, so no scheduling decision can depend on observability state. The
// sam-analyze obs-purity rule denies the registry's read surface
// (`value`/`snapshot`/`delta`) in any `src/sched*` module outright.
use sam_obs::registry as obs;

use crate::mapping::Location;

/// The policy-visible projection of a queued request: *where* it goes and
/// *when* it arrived — never *who* issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedView {
    /// Cycle the request entered the queue.
    pub arrival: Cycle,
    /// Decoded device location.
    pub loc: Location,
    /// I/O mode the column access requires (stride accesses need a mode
    /// switch costing tRTR when the rank is in the other mode).
    pub mode: IoMode,
}

/// Outcome of one [`select`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Index of the winning request within the scanned queue.
    pub index: usize,
    /// Whether the starvation cap forced this pick (the oldest request had
    /// waited more than the cap, bypassing first-ready preference).
    pub starved: bool,
}

/// Reusable zero-allocation workspace for [`select`]'s group tournament.
///
/// The controller owns one and threads it through every decision; `select`
/// fully resets it on entry, so sharing one scratch across queues (or
/// controllers) is safe and the policy stays a pure function of its
/// per-call inputs.
#[derive(Debug, Clone)]
pub struct SelectScratch {
    groups: Vec<Group>,
    /// Open-addressed hash table over `groups`, `SLOT_EMPTY` = free.
    table: [u8; TABLE_SLOTS],
}

#[derive(Debug, Clone, Copy)]
struct Group {
    view: SchedView,
    index: usize,
}

const TABLE_SLOTS: usize = 128;
const SLOT_EMPTY: u8 = u8::MAX;
/// Beyond this many distinct groups a queue item competes directly (exact
/// either way — the cap only bounds the workspace).
const MAX_GROUPS: usize = 48;

impl Default for SelectScratch {
    fn default() -> Self {
        Self {
            groups: Vec::with_capacity(MAX_GROUPS),
            table: [SLOT_EMPTY; TABLE_SLOTS],
        }
    }
}

/// Whether two views are interchangeable to the estimate: same bank, row,
/// and required mode (`col` never enters the estimate).
fn same_group(a: &SchedView, b: &SchedView) -> bool {
    a.loc.row == b.loc.row
        && a.loc.rank == b.loc.rank
        && a.loc.bank_group == b.loc.bank_group
        && a.loc.bank == b.loc.bank
        && a.mode == b.mode
}

/// Hash slot for a view's group key (full equality is re-checked via
/// [`same_group`], so collisions only cost probes, never correctness).
fn group_slot(v: &SchedView) -> usize {
    let mode = match v.mode {
        IoMode::X4 => 0u64,
        IoMode::X8 => 1,
        IoMode::X16 => 2,
        IoMode::Sx4(lane) => 3 + lane as u64,
    };
    let key = (v.loc.row << 16)
        ^ ((v.loc.rank as u64) << 12)
        ^ ((v.loc.bank_group as u64) << 8)
        ^ ((v.loc.bank as u64) << 4)
        ^ mode;
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize
}

fn estimate(
    v: &SchedView,
    now: Cycle,
    trtr: Cycle,
    earliest_column: &mut impl FnMut(Location, Cycle) -> Cycle,
    rank_mode: &mut impl FnMut(usize) -> IoMode,
) -> Cycle {
    let base = now.max(v.arrival);
    let mut est = earliest_column(v.loc, base);
    if rank_mode(v.loc.rank) != v.mode {
        est += trtr;
    }
    est
}

/// Picks the FR-FCFS winner among `queue`: requests are ranked by the
/// estimated earliest column-issue cycle (row hits first by construction),
/// with arrival order breaking ties. Requests whose required mode differs
/// from the rank's current mode are charged `trtr` in the estimate, which
/// makes the scheduler batch same-mode requests and amortize switches (the
/// controller behaviour Section 5.3 assumes).
///
/// Starvation guard: if the oldest request has already waited more than
/// `cap` cycles at `now`, it is returned directly — first-ready preference
/// must not delay any request unboundedly. [`Decision::starved`] reports
/// whether the guard fired, so the caller can count and trace cap firings.
///
/// Device state is reached only through the two closures (`earliest_column`
/// estimates the column-issue cycle for a location; `rank_mode` reports a
/// rank's current I/O mode), so the policy stays a pure function of its
/// visible inputs. `earliest_column` must be pure and monotone
/// non-decreasing in its cycle argument (every device form is
/// `max(ready, base + fixed)`); that monotonicity is what lets the group
/// tournament below skip dominated candidates.
///
/// # Algorithm
///
/// Decision-for-decision identical to the reference scan
/// ([`select_reference`]), but O(groups) estimate calls instead of
/// O(queue): requests agreeing on (bank, row, mode) are interchangeable to
/// the estimate except through `max(now, arrival)`, and the estimate is
/// monotone in arrival — so within such a group the earliest-arrived
/// member (first queue index on ties) dominates every other under the
/// `(est, arrival)` order and only that representative needs estimating.
/// Strided scans put long runs of same-row gathers in the queue, which is
/// precisely when the estimate scan was the hot loop; pathological queues
/// (every request a distinct row) fall past [`MAX_GROUPS`] and compete
/// individually, which is the reference scan again.
pub fn select(
    queue: impl Iterator<Item = SchedView>,
    now: Cycle,
    cap: Cycle,
    trtr: Cycle,
    mut earliest_column: impl FnMut(Location, Cycle) -> Cycle,
    mut rank_mode: impl FnMut(usize) -> IoMode,
    scratch: &mut SelectScratch,
) -> Option<Decision> {
    obs::SCHED_SELECTS.add(1);
    scratch.groups.clear();
    scratch.table.fill(SLOT_EMPTY);
    let mut oldest: Option<(Cycle, usize)> = None;
    // (est, arrival, index) of the best item evaluated individually
    // (group-cap overflow); merged with the group winners below.
    let mut best: Option<(Cycle, Cycle, usize)> = None;
    for (i, v) in queue.enumerate() {
        if oldest.is_none_or(|(a, _)| v.arrival < a) {
            oldest = Some((v.arrival, i));
        }
        let mut slot = group_slot(&v);
        loop {
            match scratch.table[slot] {
                SLOT_EMPTY => {
                    if scratch.groups.len() < MAX_GROUPS {
                        scratch.table[slot] = scratch.groups.len() as u8;
                        scratch.groups.push(Group { view: v, index: i });
                    } else {
                        obs::SCHED_GROUP_OVERFLOWS.add(1);
                        let est = estimate(&v, now, trtr, &mut earliest_column, &mut rank_mode);
                        if best.is_none_or(|b| (est, v.arrival, i) < b) {
                            best = Some((est, v.arrival, i));
                        }
                    }
                    break;
                }
                g => {
                    let e = &mut scratch.groups[g as usize];
                    if same_group(&e.view, &v) {
                        // First index keeps the representative on arrival
                        // ties, matching the reference scan's strict `<`.
                        if v.arrival < e.view.arrival {
                            e.view.arrival = v.arrival;
                            e.index = i;
                        }
                        break;
                    }
                    slot = (slot + 1) % TABLE_SLOTS;
                }
            }
        }
    }
    let (oldest_arrival, oldest_idx) = oldest?;
    if now.saturating_sub(oldest_arrival) > cap {
        return Some(Decision {
            index: oldest_idx,
            starved: true,
        });
    }
    for e in &scratch.groups {
        let est = estimate(&e.view, now, trtr, &mut earliest_column, &mut rank_mode);
        if best.is_none_or(|b| (est, e.view.arrival, e.index) < b) {
            best = Some((est, e.view.arrival, e.index));
        }
    }
    best.map(|(_, _, index)| Decision {
        index,
        starved: false,
    })
}

/// The reference FR-FCFS scan: estimates every queued request and keeps
/// the strict `(est, arrival)` minimum, first index winning ties.
///
/// This is the model [`select`] is proven against — the differential
/// suite replays recorded request streams through both and asserts
/// identical decisions (see `tests/` and the sam-stress matrix). Keep it
/// dead simple; it is the spec, not the fast path.
pub fn select_reference(
    queue: impl Iterator<Item = SchedView>,
    now: Cycle,
    cap: Cycle,
    trtr: Cycle,
    mut earliest_column: impl FnMut(Location, Cycle) -> Cycle,
    mut rank_mode: impl FnMut(usize) -> IoMode,
) -> Option<Decision> {
    obs::SCHED_SELECTS.add(1);
    let mut oldest: Option<(Cycle, usize)> = None;
    let mut best: Option<(Cycle, Cycle, usize)> = None;
    for (i, v) in queue.enumerate() {
        if oldest.is_none_or(|(a, _)| v.arrival < a) {
            oldest = Some((v.arrival, i));
        }
        let est = estimate(&v, now, trtr, &mut earliest_column, &mut rank_mode);
        if best.is_none_or(|(be, ba, _)| (est, v.arrival) < (be, ba)) {
            best = Some((est, v.arrival, i));
        }
    }
    let (oldest_arrival, oldest_idx) = oldest?;
    if now.saturating_sub(oldest_arrival) > cap {
        return Some(Decision {
            index: oldest_idx,
            starved: true,
        });
    }
    best.map(|(_, _, index)| Decision {
        index,
        starved: false,
    })
}

/// Advances the write-drain hysteresis latch: occupancy at or above `hi`
/// sets it (writes drain in a batch), occupancy at or below `lo` clears it
/// (reads regain priority). Between the watermarks the latch holds its
/// previous state — that hysteresis is what batches writes instead of
/// thrashing the bus turnaround on every enqueue.
pub fn drain_latch(current: bool, writeq_len: usize, hi: usize, lo: usize) -> bool {
    let mut latch = current;
    if writeq_len >= hi {
        latch = true;
    }
    if writeq_len <= lo {
        latch = false;
    }
    latch
}

/// Which queue the next scheduling decision serves: an empty side never
/// wins, otherwise the drain latch decides.
pub fn serve_writes(readq_empty: bool, writeq_empty: bool, draining: bool) -> bool {
    if readq_empty {
        !writeq_empty
    } else if writeq_empty {
        false
    } else {
        draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(arrival: Cycle, row: u64) -> SchedView {
        SchedView {
            arrival,
            loc: Location {
                row,
                ..Location::default()
            },
            mode: IoMode::X4,
        }
    }

    /// An estimate that charges 10 cycles unless the row is 7 ("open").
    fn est(loc: Location, base: Cycle) -> Cycle {
        base + if loc.row == 7 { 0 } else { 10 }
    }

    /// Runs the tournament select and the reference scan on the same queue
    /// and asserts they agree before returning the decision.
    fn select_checked(q: &[SchedView], now: Cycle, cap: Cycle, trtr: Cycle) -> Option<Decision> {
        let mut scratch = SelectScratch::default();
        let fast = select(
            q.iter().copied(),
            now,
            cap,
            trtr,
            est,
            |_| IoMode::X4,
            &mut scratch,
        );
        let reference = select_reference(q.iter().copied(), now, cap, trtr, est, |_| IoMode::X4);
        assert_eq!(fast, reference, "tournament must match the reference scan");
        fast
    }

    #[test]
    fn row_hit_beats_older_miss() {
        let q = [view(0, 1), view(5, 7)];
        let d = select_checked(&q, 6, 100, 2).unwrap();
        assert_eq!(
            d,
            Decision {
                index: 1,
                starved: false
            }
        );
    }

    #[test]
    fn arrival_breaks_estimate_ties() {
        let q = [view(3, 1), view(1, 1)];
        let d = select_checked(&q, 4, 100, 2).unwrap();
        assert_eq!(d.index, 1);
    }

    #[test]
    fn starvation_cap_overrides_row_hits() {
        let q = [view(0, 1), view(200, 7)];
        let d = select_checked(&q, 150, 100, 2).unwrap();
        assert_eq!(
            d,
            Decision {
                index: 0,
                starved: true
            }
        );
    }

    #[test]
    fn mode_mismatch_charges_trtr() {
        // Same arrival and row state; request 0 needs a stride mode the
        // rank is not in, so tRTR tips the estimate toward request 1.
        let mut q = [view(0, 7), view(0, 7)];
        q[0].mode = IoMode::Sx4(0);
        let d = select_checked(&q, 0, 100, 2).unwrap();
        assert_eq!(d.index, 1);
    }

    #[test]
    fn empty_queue_selects_nothing() {
        assert!(select_checked(&[], 0, 100, 2).is_none());
    }

    #[test]
    fn equal_arrival_ties_pick_the_first_index() {
        // Three same-group requests with equal arrivals: the reference
        // strict `<` keeps index 0; the tournament's representative rule
        // must do the same.
        let q = [view(4, 7), view(4, 7), view(4, 7)];
        let d = select_checked(&q, 5, 100, 2).unwrap();
        assert_eq!(d.index, 0);
    }

    #[test]
    fn group_cap_overflow_stays_exact() {
        // More distinct rows than MAX_GROUPS: overflow items compete
        // individually. The winner (row 7, the only "open" row) sits past
        // the cap so it must win from the overflow path.
        let mut q: Vec<SchedView> = (0..80).map(|i| view(i as Cycle, 100 + i)).collect();
        q.push(view(90, 7));
        let d = select_checked(&q, 95, 10_000, 2).unwrap();
        assert_eq!(d.index, 80);
    }

    /// Randomized differential check: tournament == reference on queues
    /// mixing repeated groups, duplicate arrivals, stride modes, and
    /// more distinct rows than the group cap.
    #[test]
    fn tournament_matches_reference_on_random_queues() {
        let mut state = 0x5A11_AD5E_1EC7_0000_u64 ^ 0x1234_5678_9abc_def0;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..500 {
            let len = (next() % 97) as usize;
            let q: Vec<SchedView> = (0..len)
                .map(|_| {
                    let mut v = view(next() % 64, next() % 60);
                    v.loc.bank = (next() % 4) as usize;
                    v.loc.bank_group = (next() % 4) as usize;
                    v.loc.rank = (next() % 2) as usize;
                    if next() % 3 == 0 {
                        v.mode = IoMode::Sx4((next() % 4) as u8);
                    }
                    v
                })
                .collect();
            let now = next() % 80;
            let cap = if next() % 4 == 0 { 20 } else { 10_000 };
            let mode = |r: usize| if r == 0 { IoMode::X4 } else { IoMode::Sx4(1) };
            let mut scratch = SelectScratch::default();
            let fast = select(q.iter().copied(), now, cap, 2, est, mode, &mut scratch);
            let reference = select_reference(q.iter().copied(), now, cap, 2, est, mode);
            assert_eq!(fast, reference, "case {case}: queue {q:?} now {now}");
        }
    }

    #[test]
    fn latch_hysteresis_holds_between_watermarks() {
        assert!(drain_latch(false, 28, 28, 8));
        assert!(drain_latch(true, 15, 28, 8), "holds between watermarks");
        assert!(!drain_latch(false, 15, 28, 8), "holds when clear too");
        assert!(!drain_latch(true, 8, 28, 8));
    }

    #[test]
    fn queue_choice_never_picks_an_empty_side() {
        assert!(!serve_writes(false, true, true));
        assert!(serve_writes(true, false, false));
        assert!(!serve_writes(true, true, true));
        assert!(serve_writes(false, false, true));
        assert!(!serve_writes(false, false, false));
    }
}

//! The next-event time wheel: the data structures the event-driven
//! simulation core is built on (DESIGN.md §13).
//!
//! Two tiers, matching the two kinds of "next interesting moment" the
//! simulator has:
//!
//! * [`TimeWheel`] — a cycle-ordered min-heap of wake entries. Publishers
//!   (rank refresh due-times, queue-head arrivals, bank ready-times) push
//!   `(cycle, token)` pairs; the consumer pops the minimum and advances
//!   simulated time *directly to it*, never ticking through the quiet gap.
//!   Ties break on insertion order (a monotone sequence number), so the
//!   pop order is a pure function of the push sequence — the determinism
//!   contract everything else in this workspace relies on.
//!
//! * [`WakeSet`] — the degenerate "now" level of the wheel: a bitmask of
//!   cores that can make progress in the current round. Core stepping is
//!   the simulator's dominant cost, and almost every step of a stalled
//!   core is a no-op retry; the wake set lets the engine skip a core in
//!   O(1) until one of its wake conditions (MLP slot retired, covering
//!   fill issued, blocked line installed, queue space freed) actually
//!   fires.
//!
//! Both structures are policy-free bookkeeping: *who* publishes wakes and
//! *what* a token means belongs to the caller.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sam_dram::Cycle;

/// A cycle-ordered wake queue with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use sam_memctrl::wake::TimeWheel;
///
/// let mut wheel: TimeWheel<&str> = TimeWheel::new();
/// wheel.push(40, "refresh");
/// wheel.push(10, "arrival");
/// wheel.push(40, "drain");
/// assert_eq!(wheel.next_cycle(), Some(10));
/// assert_eq!(wheel.pop(), Some((10, "arrival")));
/// // Equal cycles pop in push order.
/// assert_eq!(wheel.pop(), Some((40, "refresh")));
/// assert_eq!(wheel.pop(), Some((40, "drain")));
/// assert_eq!(wheel.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeWheel<T> {
    heap: BinaryHeap<Reverse<(Cycle, u64, T)>>,
    seq: u64,
}

impl<T: Ord> TimeWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Publishes a wake at `cycle` carrying `token`.
    pub fn push(&mut self, cycle: Cycle, token: T) {
        self.heap.push(Reverse((cycle, self.seq, token)));
        self.seq += 1;
    }

    /// The earliest published wake cycle, if any.
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((c, _, _))| *c)
    }

    /// The earliest wake entry without removing it (FIFO among equal
    /// cycles, same as [`Self::pop`]).
    pub fn peek(&self) -> Option<(Cycle, &T)> {
        self.heap.peek().map(|Reverse((c, _, t))| (*c, t))
    }

    /// Pops the earliest wake (FIFO among equal cycles).
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|Reverse((c, _, t))| (c, t))
    }

    /// Pops the earliest wake only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.next_cycle()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending wakes.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no wakes are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A fixed-width set of runnable entities (the engine's core wake mask).
///
/// Word-packed so membership tests on the hot path are a shift and a
/// mask; supports any population the simulator's provenance tags allow
/// (256 cores), not just one machine word.
#[derive(Debug, Clone)]
pub struct WakeSet {
    words: Vec<u64>,
    len: usize,
}

impl WakeSet {
    /// A set over `len` entities, initially all awake (every core must be
    /// stepped at least once before its first stall registers a blocker).
    pub fn all_awake(len: usize) -> Self {
        let mut s = Self {
            words: vec![0; len.div_ceil(64)],
            len,
        };
        for i in 0..len {
            s.wake(i);
        }
        s
    }

    /// Marks entity `i` runnable.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn wake(&mut self, i: usize) {
        assert!(i < self.len, "wake index {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Tests and clears entity `i`: returns whether it was runnable.
    pub fn take(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let set = self.words[w] & b != 0;
        self.words[w] &= !b;
        set
    }

    /// Whether any entity is runnable.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_orders_by_cycle_then_insertion() {
        let mut w: TimeWheel<u32> = TimeWheel::new();
        w.push(100, 1);
        w.push(50, 2);
        w.push(100, 3);
        w.push(50, 4);
        let order: Vec<(Cycle, u32)> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(order, vec![(50, 2), (50, 4), (100, 1), (100, 3)]);
    }

    #[test]
    fn wheel_peek_matches_pop_without_consuming() {
        let mut w: TimeWheel<u8> = TimeWheel::new();
        w.push(9, 1);
        w.push(9, 2);
        assert_eq!(w.peek(), Some((9, &1)));
        assert_eq!(w.peek(), Some((9, &1)), "peek must not consume");
        assert_eq!(w.pop(), Some((9, 1)));
        assert_eq!(w.peek(), Some((9, &2)));
    }

    #[test]
    fn wheel_pop_due_respects_now() {
        let mut w: TimeWheel<u8> = TimeWheel::new();
        w.push(30, 0);
        assert_eq!(w.pop_due(29), None);
        assert_eq!(w.pop_due(30), Some((30, 0)));
        assert_eq!(w.pop_due(u64::MAX), None);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn wheel_is_deterministic_across_builds() {
        let build = || {
            let mut w: TimeWheel<usize> = TimeWheel::new();
            for (i, c) in [7u64, 3, 7, 7, 1, 3].into_iter().enumerate() {
                w.push(c, i);
            }
            std::iter::from_fn(move || w.pop()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn wake_set_take_clears_and_reports() {
        let mut s = WakeSet::all_awake(4);
        assert!(s.any());
        assert!(s.take(2));
        assert!(!s.take(2), "take must clear");
        s.wake(2);
        assert!(s.take(2));
        for i in [0, 1, 3] {
            assert!(s.take(i));
        }
        assert!(!s.any());
    }

    #[test]
    fn wake_set_spans_multiple_words() {
        let mut s = WakeSet::all_awake(130);
        assert!(s.take(129));
        assert!(s.take(64));
        s.wake(129);
        assert!(s.take(129));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wake_out_of_range_panics() {
        WakeSet::all_awake(4).wake(4);
    }
}

//! Property-based tests of the epoch stats engine: over arbitrary request
//! streams and epoch lengths, the per-epoch delta rows must telescope —
//! their field-wise sum equals the controller's end-of-run totals exactly,
//! and the rows partition the run into ordered, boundary-aligned spans.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use sam_memctrl::controller::{Controller, ControllerConfig};
use sam_memctrl::request::{MemRequest, StrideSpec};
use sam_trace::{EpochCounters, EpochRecorder};

/// Runs a random request stream with an epoch recorder attached and
/// returns the recorder alongside the controller's final counters.
fn run_stream(
    epoch_len: u64,
    addrs: &[u64],
    strides: &[bool],
    writes: &[bool],
    arrivals: &[u64],
) -> (EpochRecorder, EpochCounters) {
    run_stream_cfg(
        ControllerConfig::default(),
        epoch_len,
        addrs,
        strides,
        writes,
        arrivals,
    )
}

/// [`run_stream`] under an explicit controller configuration (the
/// tight-cap starvation tests shrink the cap far below its default).
fn run_stream_cfg(
    cfg: ControllerConfig,
    epoch_len: u64,
    addrs: &[u64],
    strides: &[bool],
    writes: &[bool],
    arrivals: &[u64],
) -> (EpochRecorder, EpochCounters) {
    let mut ctrl = Controller::new(cfg);
    let epochs = Arc::new(Mutex::new(EpochRecorder::new(epoch_len)));
    ctrl.attach_epochs(epochs.clone());
    for (i, addr) in addrs.iter().enumerate() {
        let id = i as u64 + 1;
        let addr = addr & !63;
        let req = match (strides[i], writes[i]) {
            (true, false) => MemRequest::stride_read(id, addr, StrideSpec::ssc_dsd()),
            (true, true) => MemRequest::stride_write(id, addr, StrideSpec::ssc_dsd()),
            (false, false) => MemRequest::read(id, addr),
            (false, true) => MemRequest::write(id, addr),
        };
        let _ = ctrl.enqueue(req, arrivals[i]);
    }
    let done = ctrl.drain(0);
    let end = done.iter().map(|d| d.finish).max().unwrap_or(0);
    ctrl.finish_epochs(end);
    let totals = EpochCounters {
        reads: ctrl.stats().reads_done,
        writes: ctrl.stats().writes_done,
        row_hits: ctrl.stats().row_hits,
        row_misses: ctrl.stats().row_misses,
        row_conflicts: ctrl.stats().row_conflicts,
        refreshes: ctrl.stats().refreshes,
        starved: ctrl.stats().starvation_forced,
        latency: ctrl.stats().total_latency,
        acts: ctrl.device_stats().acts,
        pres: ctrl.device_stats().pres,
        mode_switches: ctrl.device_stats().mode_switches,
        bus_busy: ctrl.device().channel().busy_cycles,
    };
    drop(ctrl);
    let recorder = Arc::try_unwrap(epochs)
        .expect("controller dropped, recorder is sole owner")
        .into_inner()
        .expect("epoch recorder lock poisoned");
    (recorder, totals)
}

proptest! {
    /// The telescoping-sum invariant: every counter the epoch engine
    /// samples must be conserved — summing the per-epoch deltas
    /// reconstructs the end-of-run aggregates field by field.
    #[test]
    fn epoch_deltas_sum_to_final_totals(
        epoch_len in prop_oneof![1u64..=16, 100u64..=5000],
        addrs in proptest::collection::vec(0u64..(1 << 30), 1..50),
        strides in proptest::collection::vec(any::<bool>(), 50),
        writes in proptest::collection::vec(any::<bool>(), 50),
        arrivals in proptest::collection::vec(0u64..20_000, 50),
    ) {
        let (recorder, totals) = run_stream(epoch_len, &addrs, &strides, &writes, &arrivals);
        let sum = recorder.sum();
        prop_assert_eq!(sum.reads, totals.reads);
        prop_assert_eq!(sum.writes, totals.writes);
        prop_assert_eq!(sum.row_hits, totals.row_hits);
        prop_assert_eq!(sum.row_misses, totals.row_misses);
        prop_assert_eq!(sum.row_conflicts, totals.row_conflicts);
        prop_assert_eq!(sum.refreshes, totals.refreshes);
        prop_assert_eq!(sum.starved, totals.starved);
        prop_assert_eq!(sum.latency, totals.latency);
        prop_assert_eq!(sum.acts, totals.acts);
        prop_assert_eq!(sum.pres, totals.pres);
        prop_assert_eq!(sum.mode_switches, totals.mode_switches);
        prop_assert_eq!(sum.bus_busy, totals.bus_busy);
        // Every accepted request completed as exactly one read or write.
        prop_assert_eq!(sum.reads + sum.writes, totals.reads + totals.writes);
    }

    /// Rows partition the run: indices strictly increase, spans are
    /// non-empty and non-overlapping, and every row except the final
    /// partial one is aligned to the epoch grid.
    #[test]
    fn epoch_rows_are_ordered_and_grid_aligned(
        epoch_len in 1u64..=2000,
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..30),
        writes in proptest::collection::vec(any::<bool>(), 30),
        arrivals in proptest::collection::vec(0u64..5_000, 30),
    ) {
        let strides = vec![false; addrs.len()];
        let (recorder, totals) = run_stream(epoch_len, &addrs, &strides, &writes, &arrivals);
        let rows = recorder.rows();
        prop_assert!(!rows.is_empty() || totals.is_zero());
        for pair in rows.windows(2) {
            prop_assert!(pair[0].index < pair[1].index, "indices strictly increase");
            prop_assert!(pair[0].end <= pair[1].start, "spans do not overlap");
        }
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(row.start, row.index * epoch_len, "rows start on the grid");
            prop_assert!(row.end > row.start || totals.is_zero());
            if i + 1 < rows.len() {
                prop_assert_eq!(row.end, row.start + epoch_len, "closed rows span one epoch");
            }
        }
    }

    /// Starvation decisions are epoch-conserved too: under a tight cap
    /// and an adversarial row-hit stream (a pile of same-row hits with
    /// interleaved conflict-row victims — the shape the stress engine's
    /// row-hit flood uses), the per-epoch `starved` deltas telescope to
    /// the controller's end-of-run `starvation_forced` total, and the
    /// stream really does force starvation decisions.
    #[test]
    fn starved_counters_telescope_under_tight_caps(
        cap in 1u64..=64,
        epoch_len in prop_oneof![1u64..=16, 100u64..=5000],
        cols in proptest::collection::vec(0u64..128, 8..40),
        victims in proptest::collection::vec(any::<bool>(), 40),
    ) {
        // Row 0 hits vs row 1 of the same physical bank (the +8KB term
        // compensates the XOR bank permutation).
        let addrs: Vec<u64> = cols
            .iter()
            .zip(&victims)
            .map(|(c, v)| c * 64 + if *v { 256 * 1024 + 8 * 1024 } else { 0 })
            .collect();
        let strides = vec![false; addrs.len()];
        let writes = vec![false; addrs.len()];
        let arrivals = vec![0u64; addrs.len()];
        let cfg = ControllerConfig {
            starvation_cap: cap,
            ..Default::default()
        };
        let (recorder, totals) =
            run_stream_cfg(cfg, epoch_len, &addrs, &strides, &writes, &arrivals);
        prop_assert_eq!(recorder.sum().starved, totals.starved);
        if victims.iter().take(cols.len()).any(|&v| v)
            && !victims.iter().take(cols.len()).all(|&v| v)
        {
            // Mixed rows at a tiny cap: aged conflicts must have forced
            // at least one scheduling decision.
            prop_assert!(totals.starved > 0 || cap > 1_000);
        }
    }

    /// The invariant is insensitive to the sampling granularity: a 1-cycle
    /// recorder and a huge single-epoch recorder see the same stream and
    /// must agree on the totals.
    #[test]
    fn epoch_length_does_not_change_the_sum(
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..30),
        writes in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let strides = vec![false; addrs.len()];
        let arrivals = vec![0u64; addrs.len()];
        let (fine, t1) = run_stream(1, &addrs, &strides, &writes, &arrivals);
        let (coarse, t2) = run_stream(u64::MAX / 2, &addrs, &strides, &writes, &arrivals);
        prop_assert_eq!(t1, t2, "identical streams produce identical totals");
        prop_assert_eq!(fine.sum(), coarse.sum());
        prop_assert!(coarse.rows().len() <= 1, "one giant epoch yields one row");
        prop_assert!(fine.rows().len() >= coarse.rows().len());
    }
}

//! Property-based tests of the per-core provenance lanes: over arbitrary
//! tagged request streams, the (core, kind) lane stats must telescope —
//! their field-wise sum equals the controller's aggregate counters
//! exactly (minus refreshes, which no request owns), and the per-core
//! rows partition that total.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use sam_memctrl::controller::{Controller, ControllerConfig, ControllerStats, CoreLanes};
use sam_memctrl::request::{MemRequest, Provenance, ReqKind, StrideSpec};
use sam_trace::EpochRecorder;

/// Runs a randomly tagged request stream and returns the per-core lanes
/// alongside the controller's aggregate counters.
fn run_stream(
    addrs: &[u64],
    strides: &[bool],
    writes: &[bool],
    arrivals: &[u64],
    cores: &[u8],
    kinds: &[u8],
) -> (CoreLanes, ControllerStats) {
    run_stream_cfg(
        ControllerConfig::default(),
        addrs,
        strides,
        writes,
        arrivals,
        cores,
        kinds,
    )
}

/// [`run_stream`] under an explicit controller configuration (the
/// tight-cap starvation tests shrink the cap far below its default).
fn run_stream_cfg(
    cfg: ControllerConfig,
    addrs: &[u64],
    strides: &[bool],
    writes: &[bool],
    arrivals: &[u64],
    cores: &[u8],
    kinds: &[u8],
) -> (CoreLanes, ControllerStats) {
    let mut ctrl = Controller::new(cfg);
    for (i, addr) in addrs.iter().enumerate() {
        let id = i as u64 + 1;
        let addr = addr & !63;
        let req = match (strides[i], writes[i]) {
            (true, false) => MemRequest::stride_read(id, addr, StrideSpec::ssc_dsd()),
            (true, true) => MemRequest::stride_write(id, addr, StrideSpec::ssc_dsd()),
            (false, false) => MemRequest::read(id, addr),
            (false, true) => MemRequest::write(id, addr),
        };
        let kind = ReqKind::ALL[kinds[i] as usize % ReqKind::COUNT];
        let req = req.with_provenance(Provenance::new(cores[i], kind));
        let _ = ctrl.enqueue(req, arrivals[i]);
    }
    let _ = ctrl.drain(0);
    let stats = *ctrl.stats();
    (ctrl.per_core().clone(), stats)
}

/// Field-wise equality of a lane sum against the aggregate counters.
fn assert_telescopes(lanes: &CoreLanes, stats: &ControllerStats) {
    let total = lanes.total();
    assert_eq!(total.reads_done, stats.reads_done);
    assert_eq!(total.writes_done, stats.writes_done);
    assert_eq!(total.row_hits, stats.row_hits);
    assert_eq!(total.row_misses, stats.row_misses);
    assert_eq!(total.row_conflicts, stats.row_conflicts);
    assert_eq!(total.total_latency, stats.total_latency);
    assert_eq!(total.starvation_forced, stats.starvation_forced);
}

proptest! {
    /// The telescoping invariant: summing every (core, kind) lane
    /// reconstructs the aggregate counters field by field — no burst is
    /// double-charged or dropped, whatever mix of cores and kinds
    /// issued it.
    #[test]
    fn lane_sums_reconstruct_the_aggregates(
        addrs in proptest::collection::vec(0u64..(1 << 30), 1..50),
        strides in proptest::collection::vec(any::<bool>(), 50),
        writes in proptest::collection::vec(any::<bool>(), 50),
        arrivals in proptest::collection::vec(0u64..20_000, 50),
        cores in proptest::collection::vec(0u8..8, 50),
        kinds in proptest::collection::vec(any::<u8>(), 50),
    ) {
        let (lanes, stats) =
            run_stream(&addrs, &strides, &writes, &arrivals, &cores, &kinds);
        assert_telescopes(&lanes, &stats);
        // Every accepted request completed as exactly one read or write.
        let total = lanes.total();
        prop_assert_eq!(
            total.reads_done + total.writes_done,
            stats.reads_done + stats.writes_done
        );
    }

    /// The per-core rows partition the total: summing `core_total` over
    /// every observed core matches `total()`, and rows beyond the highest
    /// tagged core never materialize.
    #[test]
    fn core_rows_partition_the_total(
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..30),
        writes in proptest::collection::vec(any::<bool>(), 30),
        arrivals in proptest::collection::vec(0u64..5_000, 30),
        cores in proptest::collection::vec(0u8..6, 30),
        kinds in proptest::collection::vec(any::<u8>(), 30),
    ) {
        let strides = vec![false; addrs.len()];
        let (lanes, _) = run_stream(&addrs, &strides, &writes, &arrivals, &cores, &kinds);
        let max_core = cores[..addrs.len()].iter().copied().max().unwrap_or(0);
        prop_assert!(lanes.cores() <= max_core as usize + 1);
        let mut by_core = sam_memctrl::controller::LaneStats::default();
        for c in 0..lanes.cores() {
            by_core.accumulate(&lanes.core_total(c as u8));
        }
        prop_assert_eq!(by_core, lanes.total());
        // Kind lanes partition each core row the same way.
        for c in 0..lanes.cores() {
            let mut by_kind = sam_memctrl::controller::LaneStats::default();
            for kind in ReqKind::ALL {
                by_kind.accumulate(&lanes.lane(c as u8, kind));
            }
            prop_assert_eq!(by_kind, lanes.core_total(c as u8));
        }
    }

    /// Starvation decisions are lane-conserved too: under a tight cap and
    /// an adversarial row-hit stream (same-row hits with interleaved
    /// conflict-row victims), the forced decisions land in the lanes of
    /// the requests that aged out, and still telescope to the aggregate.
    #[test]
    fn starved_counters_telescope_under_tight_caps(
        cap in 1u64..=64,
        cols in proptest::collection::vec(0u64..128, 8..40),
        victims in proptest::collection::vec(any::<bool>(), 40),
        cores in proptest::collection::vec(0u8..4, 40),
        kinds in proptest::collection::vec(any::<u8>(), 40),
    ) {
        // Row 0 hits vs row 1 of the same physical bank (the +8KB term
        // compensates the XOR bank permutation).
        let addrs: Vec<u64> = cols
            .iter()
            .zip(&victims)
            .map(|(c, v)| c * 64 + if *v { 256 * 1024 + 8 * 1024 } else { 0 })
            .collect();
        let strides = vec![false; addrs.len()];
        let writes = vec![false; addrs.len()];
        let arrivals = vec![0u64; addrs.len()];
        let cfg = ControllerConfig {
            starvation_cap: cap,
            ..Default::default()
        };
        let (lanes, stats) =
            run_stream_cfg(cfg, &addrs, &strides, &writes, &arrivals, &cores, &kinds);
        assert_telescopes(&lanes, &stats);
        if victims.iter().take(cols.len()).any(|&v| v)
            && !victims.iter().take(cols.len()).all(|&v| v)
        {
            // Mixed rows at a tiny cap: aged conflicts must have forced
            // at least one scheduling decision — and the lanes saw it.
            prop_assert!(lanes.total().starvation_forced > 0 || cap > 1_000);
        }
    }

    /// The epoch-telescoping variant: with an epoch recorder attached to
    /// the same tagged stream, both accountings must be conserved at
    /// once — the per-epoch deltas sum to the aggregates (the epoch
    /// engine's invariant) AND the per-core lanes sum to the same
    /// aggregates, so the two views of one run agree on every shared
    /// counter.
    #[test]
    fn lanes_and_epoch_deltas_agree_on_the_totals(
        epoch_len in prop_oneof![1u64..=16, 100u64..=5000],
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..40),
        writes in proptest::collection::vec(any::<bool>(), 40),
        arrivals in proptest::collection::vec(0u64..10_000, 40),
        cores in proptest::collection::vec(0u8..8, 40),
        kinds in proptest::collection::vec(any::<u8>(), 40),
    ) {
        let mut ctrl = Controller::new(ControllerConfig::default());
        let epochs = Arc::new(Mutex::new(EpochRecorder::new(epoch_len)));
        ctrl.attach_epochs(epochs.clone());
        for (i, addr) in addrs.iter().enumerate() {
            let id = i as u64 + 1;
            let addr = addr & !63;
            let req = if writes[i] {
                MemRequest::write(id, addr)
            } else {
                MemRequest::read(id, addr)
            };
            let kind = ReqKind::ALL[kinds[i] as usize % ReqKind::COUNT];
            let _ = ctrl.enqueue(
                req.with_provenance(Provenance::new(cores[i], kind)),
                arrivals[i],
            );
        }
        let done = ctrl.drain(0);
        let end = done.iter().map(|d| d.finish).max().unwrap_or(0);
        ctrl.finish_epochs(end);
        let stats = *ctrl.stats();
        assert_telescopes(ctrl.per_core(), &stats);
        let epoch_sum = epochs.lock().unwrap().sum();
        let lane_total = ctrl.per_core().total();
        prop_assert_eq!(epoch_sum.reads, lane_total.reads_done);
        prop_assert_eq!(epoch_sum.writes, lane_total.writes_done);
        prop_assert_eq!(epoch_sum.row_hits, lane_total.row_hits);
        prop_assert_eq!(epoch_sum.row_misses, lane_total.row_misses);
        prop_assert_eq!(epoch_sum.row_conflicts, lane_total.row_conflicts);
        prop_assert_eq!(epoch_sum.starved, lane_total.starvation_forced);
        prop_assert_eq!(epoch_sum.latency, lane_total.total_latency);
    }

    /// Untagged streams stay cheap and attributable: every request
    /// defaults to (core 0, demand), so exactly one lane row exists and
    /// the demand lane alone carries the whole run.
    #[test]
    fn untagged_streams_collapse_to_core_zero_demand(
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..30),
        writes in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let mut ctrl = Controller::new(ControllerConfig::default());
        for (i, addr) in addrs.iter().enumerate() {
            let id = i as u64 + 1;
            let addr = addr & !63;
            let req = if writes[i] {
                MemRequest::write(id, addr)
            } else {
                MemRequest::read(id, addr)
            };
            let _ = ctrl.enqueue(req, 0);
        }
        let _ = ctrl.drain(0);
        let lanes = ctrl.per_core();
        prop_assert_eq!(lanes.cores(), 1);
        prop_assert_eq!(lanes.lane(0, ReqKind::Demand), lanes.total());
        for kind in ReqKind::ALL {
            if kind != ReqKind::Demand {
                prop_assert!(lanes.lane(0, kind).is_zero());
            }
        }
    }
}

//! Property-based tests of the controller substrate: address mapping
//! bijectivity, remap involutions, and scheduler sanity over arbitrary
//! request streams.

use proptest::prelude::*;
use sam_dram::device::DeviceConfig;
use sam_memctrl::controller::{Controller, ControllerConfig};
use sam_memctrl::mapping::{bank_swizzle, stride_page_remap, AddressMapper};
use sam_memctrl::request::{MemRequest, StrideSpec};

proptest! {
    #[test]
    fn decode_encode_is_identity_within_capacity(addr in 0u64..(1 << 35)) {
        // Capacity: 2 ranks x 16 banks x 128K rows x 8KB = 32 GiB = 2^35;
        // beyond it the row field wraps (aliasing), so the identity holds
        // exactly on in-capacity addresses.
        let m = AddressMapper::new(&DeviceConfig::ddr4_server());
        let loc = m.decode(addr);
        prop_assert_eq!(m.encode(&loc), addr);
    }

    #[test]
    fn decode_fields_always_in_range(addr in any::<u64>()) {
        let cfg = DeviceConfig::ddr4_server();
        let m = AddressMapper::new(&cfg);
        let loc = m.decode(addr);
        prop_assert!(loc.rank < cfg.ranks);
        prop_assert!(loc.bank_group < cfg.bank_groups);
        prop_assert!(loc.bank < cfg.banks_per_group);
        prop_assert!(loc.row < cfg.rows_per_bank);
        prop_assert!(loc.col < cfg.cols_per_row);
        prop_assert!(loc.offset < 64);
    }

    #[test]
    fn stride_remap_is_involution(addr in any::<u64>(), seg in 2u32..=3) {
        prop_assert_eq!(stride_page_remap(stride_page_remap(addr, seg), seg), addr);
    }

    #[test]
    fn bank_swizzle_roundtrips(target in 0u64..32, row in any::<u64>()) {
        let emitted = bank_swizzle(target, row, 5);
        prop_assert!(emitted < 32);
        prop_assert_eq!(bank_swizzle(emitted, row, 5), target);
    }

    #[test]
    fn controller_completes_every_request_exactly_once(
        addrs in proptest::collection::vec(0u64..(1 << 30), 1..40),
        strides in proptest::collection::vec(any::<bool>(), 40),
        writes in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let mut ctrl = Controller::new(ControllerConfig::default());
        let mut expected = Vec::new();
        for (i, addr) in addrs.iter().enumerate() {
            let id = i as u64 + 1;
            let addr = addr & !63;
            let req = match (strides[i], writes[i]) {
                (true, false) => MemRequest::stride_read(id, addr, StrideSpec::ssc_dsd()),
                (true, true) => MemRequest::stride_write(id, addr, StrideSpec::ssc_dsd()),
                (false, false) => MemRequest::read(id, addr),
                (false, true) => MemRequest::write(id, addr),
            };
            if ctrl.enqueue(req, 0).is_ok() {
                expected.push(id);
            }
        }
        let mut done: Vec<u64> = ctrl.drain(0).iter().map(|c| c.id).collect();
        done.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(done, expected);
    }

    /// The behavioural bound the stress engine checks, as a property:
    /// with any nonzero starvation cap, no read sits in the queue longer
    /// than the cap plus a generous drain window — the backlog that can
    /// legally be served ahead of it (a queue's worth of reads plus every
    /// write in the stream, each at worst-case service cost) plus
    /// refresh theft. See `sam_stress::driver::read_residency_bound`
    /// (recomputed here so the substrate test stays dependency-free).
    #[test]
    fn capped_reads_have_bounded_queue_residency(
        cap in 1u64..=4096,
        addrs in proptest::collection::vec(0u64..(1 << 30), 1..60),
        writes in proptest::collection::vec(any::<bool>(), 60),
        arrivals in proptest::collection::vec(0u64..20_000, 60),
    ) {
        let cfg = ControllerConfig {
            starvation_cap: cap,
            ..Default::default()
        };
        let bound = {
            let t = &cfg.device.timing;
            let svc = t.rp + t.rcd + t.cl + t.cwl + t.burst + t.wr + t.rtr + t.wtw
                + t.ccd_l + t.rrd_l + t.faw;
            let stream_writes = writes.iter().filter(|&&w| w).count() as u64;
            let backlog = (cfg.read_queue_capacity + 4) as u64 + stream_writes;
            let busy = cap + backlog * svc;
            let refresh = if cfg.refresh_enabled {
                (busy / t.refi + 2) * cfg.device.ranks as u64 * t.rfc
            } else {
                0
            };
            busy + refresh
        };
        let mut ctrl = Controller::new(cfg);
        let mut admitted = std::collections::HashMap::new();
        for (i, addr) in addrs.iter().enumerate() {
            let id = i as u64 + 1;
            let req = if writes[i] {
                MemRequest::write(id, addr & !63)
            } else {
                MemRequest::read(id, addr & !63)
            };
            if ctrl.enqueue(req, arrivals[i]).is_ok() {
                admitted.insert(id, (writes[i], arrivals[i]));
            }
        }
        for c in ctrl.drain(0) {
            let (is_write, arrival) = admitted[&c.id];
            if !is_write {
                let residency = c.finish.saturating_sub(arrival);
                prop_assert!(
                    residency <= bound,
                    "read {} sat {} cycles, bound {}", c.id, residency, bound
                );
            }
        }
    }

    #[test]
    fn completions_respect_causality(
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..30),
        arrivals in proptest::collection::vec(0u64..10_000, 30),
    ) {
        let mut ctrl = Controller::new(ControllerConfig::default());
        for (i, addr) in addrs.iter().enumerate() {
            let _ = ctrl.enqueue(MemRequest::read(i as u64, addr & !63), arrivals[i]);
        }
        for c in ctrl.drain(0) {
            prop_assert!(c.finish > c.issue, "data follows the command");
            let arrival = arrivals[c.id as usize];
            prop_assert!(c.issue >= arrival, "no request issues before it arrives");
        }
    }
}

//! Property-based tests of record placement: bijectivity of the grouped
//! layout, coverage of stride fills, and vertical-stack invariants — for
//! arbitrary table geometries and granularities.

use proptest::prelude::*;
use std::collections::HashSet;

use sam::design::Granularity;
use sam::designs::{commodity, rc_nvm_wd, sam_en, sam_sub};
use sam::layout::{Placement, Store, TableSpec};

fn granularity() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        Just(Granularity::Bits16),
        Just(Granularity::Bits8),
        Just(Granularity::Bits4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grouped_layout_never_collides(
        fields in prop_oneof![Just(2u32), Just(4), Just(8), Just(16), Just(64), Just(128)],
        records in 8u64..200,
        gran in granularity(),
    ) {
        let spec = TableSpec::new(0, fields, records);
        let p = Placement::new(spec, Store::Row, &sam_en(), gran);
        let mut seen = HashSet::new();
        for r in 0..records {
            for f in 0..fields {
                prop_assert!(seen.insert(p.field_addr(r, f)), "collision at ({r},{f})");
            }
        }
    }

    #[test]
    fn stride_fill_covers_the_requesting_sector(
        fields in prop_oneof![Just(16u32), Just(128)],
        records in 16u64..128,
        record in 0u64..128,
        field in 0u32..128,
        gran in granularity(),
    ) {
        let record = record % records;
        let field = field % fields;
        let spec = TableSpec::new(0, fields, records);
        let p = Placement::new(spec, Store::Row, &sam_en(), gran);
        let fill = p.stride_fill(record, field).unwrap();
        let sector = p.field_addr(record, field) & !15;
        prop_assert!(fill.sector_addrs.contains(&sector),
            "fill must cover the sector that triggered it");
        // All group-mates' same-field sectors are covered too.
        let k = gran.gather() as u64;
        let g = record / k;
        for r in (g * k)..((g + 1) * k).min(records) {
            let s = p.field_addr(r, field) & !15;
            prop_assert!(fill.sector_addrs.contains(&s), "group mate {r} missing");
        }
    }

    #[test]
    fn stride_fill_lines_are_consecutive(
        record in 0u64..512,
        field in 0u32..128,
        gran in granularity(),
    ) {
        let spec = TableSpec::ta(0, 512);
        let p = Placement::new(spec, Store::Row, &sam_en(), gran);
        let fill = p.stride_fill(record, field % 128).unwrap();
        let lines: Vec<u64> = fill.sector_addrs.iter().map(|s| s & !63).collect();
        let mut unique: Vec<u64> = lines.clone();
        unique.dedup();
        for w in unique.windows(2) {
            prop_assert_eq!(w[1] - w[0], 64, "gathered lines must be consecutive");
        }
    }

    #[test]
    fn vertical_mapping_is_injective_per_table(
        records in 16u64..96,
        fields in prop_oneof![Just(16u32), Just(128)],
    ) {
        let spec = TableSpec::new(0, fields, records);
        for design in [sam_sub(), rc_nvm_wd()] {
            let p = Placement::new(spec, Store::Row, &design, Granularity::Bits4);
            let mut seen = HashSet::new();
            for r in 0..records {
                for f in 0..fields {
                    let a = p.dram_addr_for(r, f);
                    prop_assert!(seen.insert(a), "{}: DRAM collision at ({r},{f})", design.name);
                }
            }
        }
    }

    #[test]
    fn column_store_is_field_major(
        records in 64u64..512,
        r1 in 0u64..512,
        f in 0u32..128,
    ) {
        let r1 = r1 % records;
        let spec = TableSpec::ta(0, records);
        let p = Placement::new(spec, Store::Column, &commodity(), Granularity::Bits4);
        if r1 + 1 < records {
            prop_assert_eq!(p.field_addr(r1 + 1, f) - p.field_addr(r1, f), 8);
        }
    }
}

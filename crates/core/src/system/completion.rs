//! Completion handling: installing finished fills into the hierarchy,
//! releasing MSHR/merge bookkeeping, issuing the writebacks evictions
//! cause, and retiring MLP slots back to the issuing core.

use sam_dram::Cycle;

/// How many data beats before burst completion the critical word reaches
/// the core on critical-word-first layouts (Table 1: horizontal layouts
/// deliver the requested word first; the paper estimates the cost of
/// giving this up at <1% for the designs that do). A DDR4 64B burst is 8
/// beats over 4 command cycles; the requested 16B word is on the bus ~3
/// command cycles before the burst's last beat.
pub(super) const CWF_EARLY_BEATS: Cycle = 3;

#[derive(Debug, Clone)]
pub(super) enum FillKind {
    /// Regular line fill: install the whole line at `cache_line`.
    Line { cache_line: u64 },
    /// Stride fill: install these sectors.
    Sectors { sector_addrs: Vec<u64> },
    /// Fire-and-forget traffic (ECC bursts, sub-field bursts, writebacks).
    Traffic,
    /// Stride writeback with a merge key to release.
    StrideWb { key: u64 },
    /// A prefetched line fill: installs on completion but is not tied to a
    /// core's MLP window.
    Prefetch { cache_line: u64 },
}

#[derive(Debug, Clone)]
pub(super) struct FillRecord {
    pub(super) core: usize,
    pub(super) kind: FillKind,
}

use super::Engine;

impl<'t> Engine<'t> {
    pub(super) fn handle_completion(&mut self, c: sam_memctrl::request::Completion) {
        self.last_finish = self.last_finish.max(c.finish);
        if self.hierarchy.trace_attached() {
            self.hierarchy.set_trace_clock(c.finish);
        }
        let Some(record) = self.fills.remove(&c.id) else {
            return;
        };
        match record.kind {
            FillKind::Line { cache_line } => {
                self.pending_lines.remove(&cache_line);
                let wbs = self
                    .hierarchy
                    .fill_line_owned(cache_line, record.core as u8);
                for s in 0..4u64 {
                    let sector = cache_line + 16 * s;
                    if self.pending_dirty.remove(&sector) {
                        self.hierarchy.mark_dirty(sector);
                    }
                }
                for wb in wbs {
                    self.issue_writeback(wb, c.finish);
                }
                // The whole line is now resident: any core blocked on one
                // of its sectors hits on retry.
                self.wake_covering_line(cache_line);
                self.retire(record.core, c.finish);
            }
            FillKind::Sectors { sector_addrs } => {
                let mut wbs = Vec::new();
                for s in &sector_addrs {
                    self.pending_sectors.remove(s);
                    wbs.extend(self.hierarchy.fill_sector_owned(*s, record.core as u8));
                    if self.pending_dirty.remove(s) {
                        self.hierarchy.mark_dirty(*s);
                    }
                }
                for wb in wbs {
                    self.issue_writeback(wb, c.finish);
                }
                // Sector fills install exactly these 16B sectors; other
                // sectors of the same lines stay invalid, so the wake is
                // per-sector, not per-line.
                for s in &sector_addrs {
                    self.wake_covering_sector(*s);
                }
                self.retire(record.core, c.finish);
            }
            FillKind::Traffic => {}
            FillKind::StrideWb { key } => {
                self.wb_merge.remove(&key);
            }
            FillKind::Prefetch { cache_line } => {
                self.pending_lines.remove(&cache_line);
                let wbs = self
                    .hierarchy
                    .fill_line_owned(cache_line, record.core as u8);
                for wb in wbs {
                    self.issue_writeback(wb, c.finish);
                }
                self.wake_covering_line(cache_line);
            }
        }
    }

    fn retire(&mut self, core: usize, finish: Cycle) {
        // Critical-word-first layouts hand the requested word to the core
        // before the burst completes (see [`CWF_EARLY_BEATS`]).
        let visible = if self.design.critical_word_first {
            finish.saturating_sub(CWF_EARLY_BEATS)
        } else {
            finish
        };
        let c = &mut self.cores[core];
        debug_assert!(c.outstanding > 0);
        c.outstanding -= 1;
        c.freed
            .push(std::cmp::Reverse(self.cfg.mem_to_cpu(visible)));
        // The MLP window has a free slot again: the publisher that wakes a
        // window-stalled core.
        self.runnable.wake(core);
    }
}

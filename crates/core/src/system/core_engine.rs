//! Bounded-MLP core stepping: op expansion into 16B sector touches, the
//! cache-hierarchy front end, and the sliding MLP window (see the module
//! doc on [`super`] for the overall decomposition).

use std::collections::BTreeSet;

use sam_cache::hierarchy::{AccessKind, HitLevel};

use crate::ops::TraceOp;

use super::Engine;

#[derive(Debug, Clone, Copy)]
pub(super) struct SectorTouch {
    pub(super) cache_sector: u64,
    pub(super) table: u8,
    pub(super) record: u64,
    pub(super) field: u16,
    pub(super) write: bool,
    /// Field access (stride-eligible) vs whole-record access.
    pub(super) field_access: bool,
}

/// What a stalled core is waiting on, registered at stall time so wake
/// publishers (completions, covering fills, queue drains) can re-arm the
/// core in O(1) instead of the engine re-stepping every core every round.
///
/// A stalled retry can only make progress when one of these fires:
/// the blocked line/sector is installed into the hierarchy, a covering
/// fill enters the MSHR pending sets, the core's own MLP slot retires, or
/// (for `queue_full`) the controller read queue drains an entry. Each of
/// those is a discrete event with a publisher; anything else cannot change
/// the retry's outcome, which is what makes skipping the retries exact.
#[derive(Debug, Clone, Copy)]
pub(super) struct Blocker {
    /// The 16B sector the blocked touch addresses.
    pub(super) sector: u64,
    /// Its containing cache line.
    pub(super) line: u64,
    /// Stalled on controller queue capacity (vs the MLP window).
    pub(super) queue_full: bool,
}

#[derive(Debug)]
pub(super) struct CoreState<'t> {
    pub(super) trace: &'t [TraceOp],
    pub(super) op_idx: usize,
    pub(super) sector_idx: usize,
    pub(super) sectors: Vec<SectorTouch>,
    pub(super) time_cpu: u64,
    pub(super) outstanding: usize,
    pub(super) issued: u64,
    /// CPU-cycle times at which completed fills freed their MLP slots
    /// (min-heap): issuing beyond the window consumes the earliest one.
    pub(super) freed: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    pub(super) done: bool,
    /// Set while stalled: the wake condition that can unblock this core.
    pub(super) blocked: Option<Blocker>,
}

impl<'t> CoreState<'t> {
    pub(super) fn new(trace: &'t [TraceOp]) -> Self {
        Self {
            trace,
            op_idx: 0,
            sector_idx: 0,
            sectors: Vec::new(),
            time_cpu: 0,
            outstanding: 0,
            issued: 0,
            freed: std::collections::BinaryHeap::new(),
            done: trace.is_empty(),
            blocked: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Step {
    Progress,
    Stalled,
    Done,
}

impl<'t> Engine<'t> {
    pub(super) fn expand_op(&self, core: usize) -> Option<Vec<SectorTouch>> {
        let c = &self.cores[core];
        let op = c.trace.get(c.op_idx)?;
        match op {
            TraceOp::Compute(_) => Some(Vec::new()),
            TraceOp::Fields {
                table,
                record,
                fields,
                write,
            } => {
                let p = &self.placements[*table as usize];
                let mut seen = BTreeSet::new();
                let mut touches = Vec::with_capacity(fields.len());
                for &f in fields {
                    let addr = p.field_addr(*record, f as u32);
                    let sector = addr & !15;
                    if seen.insert(sector) {
                        touches.push(SectorTouch {
                            cache_sector: sector,
                            table: *table,
                            record: *record,
                            field: f,
                            write: *write,
                            field_access: true,
                        });
                    }
                }
                // Access-path choice (the sload/sstore decision is made by
                // software, Section 5.1.2): when an op touches half the
                // record or more, a row access moves less data than
                // per-field stride gathers — fall back to line fills.
                let touched = touches.len() as u64 * 16;
                if touched * 2 > p.spec().record_bytes() {
                    for t in &mut touches {
                        t.field_access = false;
                    }
                }
                Some(touches)
            }
            TraceOp::Whole {
                table,
                record,
                write,
            } => {
                let p = &self.placements[*table as usize];
                let fields = p.spec().fields;
                let mut seen = BTreeSet::new();
                let mut touches = Vec::new();
                // Touch every field; sector dedup collapses neighbours that
                // share a 16B sector (adjacent fields in row stores).
                for f in 0..fields {
                    let addr = p.field_addr(*record, f);
                    let sector = addr & !15;
                    if seen.insert(sector) {
                        touches.push(SectorTouch {
                            cache_sector: sector,
                            table: *table,
                            record: *record,
                            field: f as u16,
                            write: *write,
                            field_access: false,
                        });
                    }
                }
                Some(touches)
            }
        }
    }

    /// Advances one core as far as it can go; returns how it stopped.
    pub(super) fn step_core(&mut self, ci: usize) -> Step {
        if self.cores[ci].done {
            return Step::Done;
        }
        // Any previously registered blocker is stale the moment the core
        // runs again; a stall below re-registers the current one.
        self.cores[ci].blocked = None;
        let mut progressed = false;
        loop {
            // Need a fresh op expansion?
            if self.cores[ci].sector_idx >= self.cores[ci].sectors.len() {
                let c = &self.cores[ci];
                match c.trace.get(c.op_idx) {
                    None => {
                        self.cores[ci].done = true;
                        return Step::Done;
                    }
                    Some(TraceOp::Compute(cycles)) => {
                        self.cores[ci].time_cpu += *cycles as u64;
                        self.cores[ci].op_idx += 1;
                        self.cores[ci].sector_idx = 0;
                        self.cores[ci].sectors.clear();
                        progressed = true;
                        continue;
                    }
                    Some(_) => {
                        let touches = self.expand_op(ci).expect("op exists");
                        let c = &mut self.cores[ci];
                        c.sectors = touches;
                        c.sector_idx = 0;
                        c.op_idx += 1;
                        if c.sectors.is_empty() {
                            progressed = true;
                            continue;
                        }
                    }
                }
            }
            let touch = self.cores[ci].sectors[self.cores[ci].sector_idx];
            match self.touch(ci, touch) {
                Step::Progress => {
                    self.cores[ci].sector_idx += 1;
                    progressed = true;
                }
                Step::Stalled => {
                    return if progressed {
                        Step::Progress
                    } else {
                        Step::Stalled
                    };
                }
                Step::Done => unreachable!("touch never reports Done"),
            }
        }
    }

    /// Performs one 16B touch; `Stalled` means MLP or queue pressure.
    fn touch(&mut self, ci: usize, t: SectorTouch) -> Step {
        self.probe_tick();
        self.cores[ci].time_cpu += self.cfg.touch_cost_cpu;
        let kind = if t.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if self.hierarchy.trace_attached() {
            self.hierarchy
                .set_trace_clock(self.cfg.cpu_to_mem(self.cores[ci].time_cpu));
        }
        let result = self.hierarchy.access(t.cache_sector, kind);
        match result.level {
            HitLevel::L1 => Step::Progress,
            HitLevel::L2 => {
                self.cores[ci].time_cpu += self.cfg.l2_extra_cpu;
                Step::Progress
            }
            HitLevel::Llc => {
                self.cores[ci].time_cpu += self.cfg.llc_extra_cpu;
                Step::Progress
            }
            HitLevel::Memory => {
                self.cores[ci].time_cpu += self.cfg.llc_extra_cpu;
                let line = t.cache_sector & !63;
                // MSHR merge: a fill in flight already covers this touch.
                if self.pending_sectors.contains(&t.cache_sector)
                    || self.pending_lines.contains(&line)
                {
                    if t.write {
                        self.pending_dirty.insert(t.cache_sector);
                    }
                    return Step::Progress;
                }
                if self.cores[ci].outstanding >= self.cfg.mlp {
                    // Undo the speculative miss-discovery charge: the touch
                    // will be retried once a slot frees up.
                    self.cores[ci].time_cpu -= self.cfg.llc_extra_cpu + self.cfg.touch_cost_cpu;
                    self.cores[ci].blocked = Some(Blocker {
                        sector: t.cache_sector,
                        line,
                        queue_full: false,
                    });
                    return Step::Stalled;
                }
                match self.issue_fill(ci, t) {
                    true => {
                        if t.write {
                            self.pending_dirty.insert(t.cache_sector);
                        }
                        Step::Progress
                    }
                    false => {
                        self.cores[ci].time_cpu -= self.cfg.llc_extra_cpu + self.cfg.touch_cost_cpu;
                        self.cores[ci].blocked = Some(Blocker {
                            sector: t.cache_sector,
                            line,
                            queue_full: true,
                        });
                        Step::Stalled
                    }
                }
            }
        }
    }

    /// Charges the core for occupying an MLP slot: beyond the first window,
    /// each issue consumes the earliest freed slot, advancing core time to
    /// that completion (the sliding-window model of out-of-order misses).
    pub(super) fn consume_slot(&mut self, ci: usize) {
        let mlp = self.cfg.mlp as u64;
        let c = &mut self.cores[ci];
        c.issued += 1;
        if c.issued > mlp {
            let std::cmp::Reverse(t) = c.freed.pop().expect("a slot must free before reuse");
            c.time_cpu = c.time_cpu.max(t);
        }
    }
}

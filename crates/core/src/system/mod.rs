//! The full-system simulator: bounded-MLP cores driving design-lowered
//! memory traffic through the sector-cache hierarchy, FR-FCFS controller,
//! and cycle-level device model.
//!
//! ## Core model
//!
//! The paper's workloads are memory-bound scans, so cores are modelled as
//! in-order issue engines with out-of-order completion: a core charges a
//! small issue cost per 16B touch and per explicit `Compute` op, never
//! architecturally waits for load data, and is throttled only by its
//! miss-level parallelism window (`mlp` outstanding misses). This
//! reproduces exactly the properties the evaluation depends on — request
//! counts, access patterns, achievable overlap — without an ISA pipeline
//! (see DESIGN.md §1).
//!
//! ## Lowering
//!
//! A 16B touch that misses the hierarchy becomes:
//!
//! * a **stride burst** when the design supports striding, the op is a
//!   field access, and the table is row-stored — filling the same field
//!   unit of all K gathered records (one burst, K sectors); or
//! * a **regular line fill** (64B burst) otherwise.
//!
//! Embedded-ECC designs (GS-DRAM-ecc) pay extra ECC bursts; RC-NVM-bit pays
//! extra sub-field column bursts; SAM designs pay MRS mode switches (tRTR)
//! whenever the rank flips between regular and stride modes — all emerging
//! from the request stream, not hard-coded factors.

//! ## Module layout
//!
//! The simulator is decomposed by concern, with [`System`] as a thin
//! orchestrator over an internal `Engine`:
//!
//! * [`core_engine`](self) — bounded-MLP core stepping (op expansion,
//!   sector touches, the MLP sliding window);
//! * [`lowering`](self) — design lowering of missing touches into tagged
//!   memory requests (stride / narrow / line fills, prefetch, ECC extras);
//! * [`datapath`](self) — writeback issue, stride write-combining, and the
//!   overflow backlog;
//! * [`completion`](self) — completion handling, fill installation, and
//!   MLP-slot retirement.
//!
//! Every request the engine issues carries a
//! [`Provenance`](sam_memctrl::request::Provenance) tag (issuing core +
//! lowering path). The tag is payload-only — the scheduler never reads it —
//! so attribution cannot perturb timing; the controller folds it into
//! per-core statistics lanes surfaced here as [`RunResult::per_core`].

mod completion;
mod core_engine;
mod datapath;
mod lowering;

use std::collections::VecDeque;

use sam_util::fxhash::{FxHashMap, FxHashSet};

use sam_cache::hierarchy::{Hierarchy, HierarchyConfig};
use sam_cache::set_assoc::CacheStats;
use sam_dram::device::DeviceStats;
use sam_dram::Cycle;
use sam_memctrl::controller::{Controller, ControllerConfig, ControllerStats, CoreLanes};
use sam_memctrl::hybrid::{DramCacheController, HybridConfig, HybridSummary};
use sam_memctrl::level::MemLevel;
use sam_memctrl::request::MemRequest;
use sam_memctrl::wake::WakeSet;

use crate::design::{Design, Granularity};
use crate::layout::{Placement, Store, TableSpec};
use crate::ops::Trace;

use completion::FillRecord;
use core_engine::{CoreState, Step};

/// System-level configuration (core counts, frequencies, lowering knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (Table 2: 4).
    pub cores: usize,
    /// Outstanding misses allowed per core (MLP window).
    pub mlp: usize,
    /// CPU clock in MHz (Table 2: 4 GHz).
    pub cpu_mhz: u64,
    /// Memory command clock in MHz (DDR4-2400: 1200 MHz).
    pub mem_mhz: u64,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Strided granularity (Section 4.4; the evaluation defaults to 4-bit).
    pub granularity: Granularity,
    /// CPU cycles charged per 16B touch (issue bandwidth).
    pub touch_cost_cpu: u64,
    /// Extra CPU cycles for an L2 hit.
    pub l2_extra_cpu: u64,
    /// Extra CPU cycles for an LLC hit (and for discovering a miss).
    pub llc_extra_cpu: u64,
    /// Embedded ECC: one extra ECC read per this many stride bursts
    /// (gathered lines come from scattered rows, defeating ECC locality).
    pub ecc_stride_period: u32,
    /// Embedded ECC: one extra ECC read per this many sequential line fills.
    pub ecc_seq_period: u32,
    /// Embedded ECC: extra bursts (RMW on ECC words) per write burst
    /// (Section 3.3.1: one write transfer can update five ECC words).
    pub ecc_write_extra: u32,
    /// Next-line stream prefetch degree for regular line fills (0 = off,
    /// the Table 2 configuration; the ablation harness sweeps it).
    pub prefetch_degree: u32,
    /// FR-FCFS starvation-cap override in memory cycles. `None` uses the
    /// design's preference, falling back to the controller default (4096).
    /// A `Some` here (e.g. from the `--starvation-cap` CLI flag) wins over
    /// both.
    pub starvation_cap: Option<Cycle>,
    /// Write-drain high-watermark override (`--drain-hi`). Same precedence
    /// as [`Self::starvation_cap`]: CLI beats design beats controller
    /// default (28).
    pub drain_hi: Option<usize>,
    /// Write-drain low-watermark override (`--drain-lo`). Same precedence;
    /// controller default is 8.
    pub drain_lo: Option<usize>,
    /// Dump per-core progress counters to stderr at the end of a run (the
    /// `--debug-cores` CLI flag). Stderr only, so enabling it never touches
    /// the byte-compared stdout/JSON outputs.
    pub debug_cores: bool,
    /// Hybrid-memory topology: when set, a DDR4 DRAM cache fronts the
    /// design's device as backing store
    /// ([`DramCacheController`]); `None` (the default,
    /// and every pinned golden) drives the design's device directly.
    pub hybrid: Option<HybridConfig>,
}

impl SystemConfig {
    /// Table 2 defaults.
    pub fn table2() -> Self {
        Self {
            cores: 4,
            mlp: 16,
            cpu_mhz: 4000,
            mem_mhz: 1200,
            hierarchy: HierarchyConfig::table2(),
            granularity: Granularity::Bits4,
            touch_cost_cpu: 1,
            l2_extra_cpu: 2,
            llc_extra_cpu: 4,
            ecc_stride_period: 2,
            ecc_seq_period: 8,
            ecc_write_extra: 4,
            prefetch_degree: 0,
            starvation_cap: None,
            drain_hi: None,
            drain_lo: None,
            debug_cores: false,
            hybrid: None,
        }
    }

    fn cpu_to_mem(&self, cpu: u64) -> Cycle {
        (cpu as u128 * self.mem_mhz as u128 / self.cpu_mhz as u128) as Cycle
    }

    fn mem_to_cpu(&self, mem: Cycle) -> u64 {
        (mem as u128 * self.cpu_mhz as u128).div_ceil(self.mem_mhz as u128) as u64
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// Everything a run produces; the harness derives speedups, power, and
/// energy from these counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// End-to-end memory-clock cycles.
    pub cycles: Cycle,
    /// Controller-side stats (row hits, latency).
    pub ctrl: ControllerStats,
    /// Device command counts (power-model input).
    pub device: DeviceStats,
    /// L1 / L2 / LLC statistics.
    pub cache: (CacheStats, CacheStats, CacheStats),
    /// Stride bursts issued (any design).
    pub stride_bursts: u64,
    /// Regular 64B line bursts issued (fills).
    pub line_bursts: u64,
    /// Extra ECC bursts (embedded-ECC designs only).
    pub ecc_bursts: u64,
    /// Writeback bursts issued.
    pub writeback_bursts: u64,
    /// Busy cycles on the data bus.
    pub bus_busy: Cycle,
    /// Mean request latency (arrival to last beat), memory cycles.
    pub latency_mean: f64,
    /// p50 request-latency upper bound (power-of-two bucket).
    pub latency_p50: Cycle,
    /// p99 request-latency upper bound (power-of-two bucket).
    pub latency_p99: Cycle,
    /// Mean read latency, memory cycles (0.0 when no reads completed).
    pub read_latency_mean: f64,
    /// p99 read-latency upper bound (power-of-two bucket).
    pub read_latency_p99: Cycle,
    /// Mean write latency, memory cycles (0.0 when no writes completed).
    pub write_latency_mean: f64,
    /// p99 write-latency upper bound (power-of-two bucket).
    pub write_latency_p99: Cycle,
    /// Per-(core, kind) controller statistics lanes, telescoping exactly to
    /// the aggregate [`Self::ctrl`] counters (refreshes excluded — they are
    /// rank-level background work with no owning request).
    pub per_core: CoreLanes,
    /// DRAM-cache counters when the run used a hybrid topology
    /// ([`SystemConfig::hybrid`]); `None` on flat hierarchies.
    pub hybrid: Option<HybridSummary>,
}

impl RunResult {
    /// Wall-clock seconds at the configured memory clock.
    pub fn seconds(&self, mem_mhz: u64) -> f64 {
        self.cycles as f64 / (mem_mhz as f64 * 1e6)
    }

    /// Data-bus utilization in [0, 1].
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bus_busy as f64 / self.cycles as f64
        }
    }
}

/// Hooks for the external verification layer (the `sam-check` crate).
///
/// A default-constructed value is fully inert; [`System::run`] uses one
/// internally. The command `observer` field only exists when the `check`
/// cargo feature is enabled — without it the simulator carries no
/// observation plumbing at all.
#[derive(Default)]
pub struct Instrumentation<'a> {
    /// Sink for every DRAM command the CPU-facing device accepts, in
    /// issue order.
    #[cfg(feature = "check")]
    pub observer: Option<sam_dram::observe::SharedObserver>,
    /// Sink for commands on the *backing* device of a hybrid topology
    /// ([`SystemConfig::hybrid`]); ignored on flat hierarchies, which
    /// have no backing device.
    #[cfg(feature = "check")]
    pub backing_observer: Option<sam_dram::observe::SharedObserver>,
    /// Called with the cache hierarchy every `cache_probe_period` touches
    /// (and once at the end of the run), e.g. to check model invariants.
    pub cache_probe: Option<&'a mut (dyn FnMut(&Hierarchy) + 'a)>,
    /// Touch interval between `cache_probe` calls; 0 disables the periodic
    /// calls (the final end-of-run call still happens if a probe is set).
    pub cache_probe_period: u64,
    /// Trace sink receiving controller, cache, and (with the `check`
    /// feature, via the device command observer) per-bank DRAM events.
    /// Purely observational — attaching one never changes the simulation.
    pub trace: Option<sam_trace::SharedSink>,
    /// Epoch recorder sampling cumulative controller/device counters into
    /// fixed-length-epoch delta rows, plus an end-of-round MLP gauge.
    pub epochs: Option<sam_trace::SharedEpochs>,
}

impl std::fmt::Debug for Instrumentation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Instrumentation");
        #[cfg(feature = "check")]
        d.field("observer", &self.observer.is_some())
            .field("backing_observer", &self.backing_observer.is_some());
        d.field("cache_probe", &self.cache_probe.is_some())
            .field("cache_probe_period", &self.cache_probe_period)
            .field("trace", &self.trace.is_some())
            .field("epochs", &self.epochs.is_some())
            .finish()
    }
}

/// A configured system ready to run traces.
#[derive(Debug, Clone)]
pub struct System {
    cfg: SystemConfig,
    design: Design,
    store: Store,
}

impl System {
    /// Creates a system for `design` with tables organized as `store`.
    pub fn new(cfg: SystemConfig, design: Design, store: Store) -> Self {
        Self { cfg, design, store }
    }

    /// The design under test.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Runs `traces` (one per core; fewer is fine) against `tables`.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` exceeds the configured core count or if an
    /// op references a missing table.
    pub fn run(&self, tables: &[TableSpec], traces: &[Trace]) -> RunResult {
        let mut instr = Instrumentation::default();
        self.run_instrumented(tables, traces, &mut instr)
    }

    /// Like [`Self::run`], with verification hooks attached (see
    /// [`Instrumentation`]).
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` exceeds the configured core count or if an
    /// op references a missing table.
    pub fn run_instrumented(
        &self,
        tables: &[TableSpec],
        traces: &[Trace],
        instr: &mut Instrumentation<'_>,
    ) -> RunResult {
        assert!(traces.len() <= self.cfg.cores, "more traces than cores");
        let placements: Vec<Placement> = tables
            .iter()
            .map(|t| Placement::new(*t, self.store, &self.design, self.cfg.granularity))
            .collect();
        let mut engine = Engine::new(&self.cfg, &self.design, placements, traces);
        if let Some(sink) = &instr.trace {
            engine.ctrl.attach_trace(sink.clone());
            engine.hierarchy.attach_trace(sink.clone());
        }
        if let Some(ep) = &instr.epochs {
            engine.ctrl.attach_epochs(ep.clone());
            engine.epochs = Some(ep.clone());
        }
        #[cfg(feature = "check")]
        {
            use std::sync::{Arc, Mutex};
            // The device-level tap holds one observer; fan out when both the
            // conformance checker and the trace lane recorder want it.
            let mut taps: Vec<sam_dram::observe::SharedObserver> = Vec::new();
            if let Some(obs) = &instr.observer {
                taps.push(obs.clone());
            }
            if let Some(sink) = &instr.trace {
                // The lane tracer shadows the CPU-facing device: the DDR4
                // front cache under a hybrid topology, the design's own
                // device otherwise.
                let timing = if self.cfg.hybrid.is_some() {
                    sam_dram::device::DeviceConfig::ddr4_server().timing
                } else {
                    self.design.device_config().timing
                };
                taps.push(Arc::new(Mutex::new(
                    sam_dram::lanes::CommandLaneTracer::new(sink.clone(), timing),
                )));
            }
            if taps.len() == 1 {
                engine.ctrl.attach_observer(taps.pop().expect("one tap"));
            } else if taps.len() > 1 {
                let mut fan = sam_dram::observe::FanoutObserver::new();
                for tap in taps {
                    fan.push(tap);
                }
                engine.ctrl.attach_observer(Arc::new(Mutex::new(fan)));
            }
            if let Some(obs) = &instr.backing_observer {
                engine.ctrl.attach_backing_observer(obs.clone());
            }
        }
        engine.probe = match &mut instr.cache_probe {
            Some(p) => Some(&mut **p),
            None => None,
        };
        engine.probe_period = instr.cache_probe_period;
        engine.run()
    }
}

struct Engine<'t> {
    cfg: &'t SystemConfig,
    design: &'t Design,
    placements: Vec<Placement>,
    hierarchy: Hierarchy,
    /// The memory hierarchy below the caches, driven exclusively through
    /// the composable level interface (DESIGN.md §16): the flat FR-FCFS
    /// [`Controller`] by default, the hybrid [`DramCacheController`] when
    /// [`SystemConfig::hybrid`] is set.
    ctrl: Box<dyn MemLevel>,
    cores: Vec<CoreState<'t>>,
    fills: FxHashMap<u64, FillRecord>,
    /// Sectors/lines with a fill in flight (MSHR merge).
    pending_sectors: FxHashSet<u64>,
    pending_lines: FxHashSet<u64>,
    /// Sectors written while their fill was in flight: marked dirty once
    /// the fill installs (write-allocate completion).
    pending_dirty: FxHashSet<u64>,
    /// Outstanding stride-writeback merge keys.
    wb_merge: FxHashSet<u64>,
    /// Stride-burst address recorded per cache line at fill time, so dirty
    /// evictions can be written back as stride bursts.
    line_to_burst: FxHashMap<u64, (u64, u8)>,
    /// Writebacks that did not fit the write queue yet (with their stride
    /// merge key, if any — the key stays held while backlogged).
    wb_backlog: VecDeque<(MemRequest, Cycle, Option<u64>)>,
    next_id: u64,
    ecc_stride_count: u32,
    ecc_seq_count: u32,
    extra_burst_count: u32,
    /// Per-core last sequentially missed line (stream detector).
    last_miss_line: Vec<u64>,
    stride_bursts: u64,
    line_bursts: u64,
    ecc_bursts: u64,
    writeback_bursts: u64,
    last_finish: Cycle,
    /// Invariant probe over the cache hierarchy (verification layer).
    probe: Option<&'t mut (dyn FnMut(&Hierarchy) + 't)>,
    probe_period: u64,
    probe_ticks: u64,
    /// Epoch recorder shared with the controller; the engine contributes
    /// the MLP gauge (outstanding misses across cores).
    epochs: Option<sam_trace::SharedEpochs>,
    /// Cores whose next step can make progress. Stalled cores leave the
    /// set and are re-armed only by a wake publisher matching their
    /// registered [`core_engine::Blocker`] — the event-driven core loop
    /// (DESIGN.md §13).
    runnable: WakeSet,
}

impl<'t> Engine<'t> {
    fn new(
        cfg: &'t SystemConfig,
        design: &'t Design,
        placements: Vec<Placement>,
        traces: &'t [Trace],
    ) -> Self {
        let mut ctrl_cfg = ControllerConfig::with_device(design.device_config());
        if let Some(cap) = design.starvation_cap {
            ctrl_cfg.starvation_cap = cap;
        }
        if let Some(cap) = cfg.starvation_cap {
            ctrl_cfg.starvation_cap = cap;
        }
        if let Some(hi) = design.drain_hi {
            ctrl_cfg.write_high_watermark = hi;
        }
        if let Some(lo) = design.drain_lo {
            ctrl_cfg.write_low_watermark = lo;
        }
        if let Some(hi) = cfg.drain_hi {
            ctrl_cfg.write_high_watermark = hi;
        }
        if let Some(lo) = cfg.drain_lo {
            ctrl_cfg.write_low_watermark = lo;
        }
        let ctrl: Box<dyn MemLevel> = match cfg.hybrid {
            Some(hybrid) => Box::new(DramCacheController::new(ctrl_cfg, hybrid)),
            None => Box::new(Controller::new(ctrl_cfg)),
        };
        // Provenance stores the issuing core in a u8; the Table 2 system
        // has 4 cores, so this only guards pathological configurations.
        assert!(
            traces.len() <= u8::MAX as usize + 1,
            "provenance tags support at most 256 cores"
        );
        Self {
            cfg,
            design,
            placements,
            hierarchy: Hierarchy::new(cfg.hierarchy),
            ctrl,
            cores: traces.iter().map(|t| CoreState::new(t)).collect(),
            fills: FxHashMap::default(),
            pending_sectors: FxHashSet::default(),
            pending_lines: FxHashSet::default(),
            pending_dirty: FxHashSet::default(),
            wb_merge: FxHashSet::default(),
            line_to_burst: FxHashMap::default(),
            wb_backlog: VecDeque::new(),
            next_id: 0,
            ecc_stride_count: 0,
            ecc_seq_count: 0,
            extra_burst_count: 0,
            last_miss_line: vec![u64::MAX; traces.len()],
            stride_bursts: 0,
            line_bursts: 0,
            ecc_bursts: 0,
            writeback_bursts: 0,
            last_finish: 0,
            probe: None,
            probe_period: 0,
            probe_ticks: 0,
            epochs: None,
            runnable: WakeSet::all_awake(traces.len()),
        }
    }

    /// Wakes every core whose blocked touch addresses exactly `sector`
    /// (published when a fill covering that sector is issued or installs).
    fn wake_covering_sector(&mut self, sector: u64) {
        for ci in 0..self.cores.len() {
            if let Some(b) = self.cores[ci].blocked {
                if b.sector == sector {
                    self.runnable.wake(ci);
                }
            }
        }
    }

    /// Wakes every core blocked inside cache line `line` (published when a
    /// whole-line fill is issued or installs: any sector of it now hits).
    fn wake_covering_line(&mut self, line: u64) {
        for ci in 0..self.cores.len() {
            if let Some(b) = self.cores[ci].blocked {
                if b.line == line {
                    self.runnable.wake(ci);
                }
            }
        }
    }

    /// Wakes every core stalled on controller queue capacity (published
    /// after each scheduling decision: it freed one queue slot).
    fn wake_queue_blocked(&mut self) {
        for ci in 0..self.cores.len() {
            if let Some(b) = self.cores[ci].blocked {
                if b.queue_full {
                    self.runnable.wake(ci);
                }
            }
        }
    }

    /// Runs the periodic cache-invariant probe if one is attached.
    fn probe_tick(&mut self) {
        if self.probe_period == 0 {
            return;
        }
        self.probe_ticks += 1;
        if self.probe_ticks.is_multiple_of(self.probe_period) {
            if let Some(p) = &mut self.probe {
                p(&self.hierarchy);
            }
        }
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn run(mut self) -> RunResult {
        loop {
            // Let every runnable core run as far as it can. Pass order is
            // the ticked loop's round-robin: a wake for an index at or
            // below the cursor joins the next pass, one above joins this
            // pass — so the sequence of *effectful* steps (and with it the
            // controller enqueue order) is identical to stepping every
            // core every pass; only the no-op retries are skipped.
            loop {
                let mut any = false;
                for ci in 0..self.cores.len() {
                    if self.runnable.take(ci) && self.step_core(ci) == Step::Progress {
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            if let Some(ep) = &self.epochs {
                let outstanding: u64 = self.cores.iter().map(|c| c.outstanding as u64).sum();
                ep.lock()
                    .expect("epoch recorder lock poisoned")
                    .observe_mlp(outstanding);
            }
            self.flush_backlog();
            let all_done = self.cores.iter().all(|c| c.done);
            if all_done && self.ctrl.queued() == 0 && self.wb_backlog.is_empty() {
                break;
            }
            let now = self.ctrl.clock();
            // Refresh catch-up stays *lazy* here on purpose: `execute`
            // services due deadlines (at their original cycles) after the
            // FR-FCFS winner is chosen, and eagerly applying them first
            // would let the selection estimates observe post-refresh bank
            // state and pick different winners. `Controller::advance_to`
            // is the idle-jump primitive for callers with no pending
            // decision (the stress driver's arrival gaps).
            match self.ctrl.schedule_one(now) {
                Some(c) => {
                    self.handle_completion(c);
                    // The decision drained one queue slot.
                    self.wake_queue_blocked();
                }
                None => {
                    if self.wb_backlog.is_empty() {
                        // A composite level (the DRAM-cache hybrid) may
                        // consume several non-terminal inner completions
                        // inside one call and return `None` only once fully
                        // idle — so an idle controller here can simply mean
                        // this call drained the run's tail, even though the
                        // break above saw `queued() > 0` before the call.
                        // Queue capacity also freed up: wake admission-
                        // stalled cores, then fail only if nothing is
                        // runnable while work remains.
                        self.wake_queue_blocked();
                        let finished = self.cores.iter().all(|c| c.done) && self.ctrl.queued() == 0;
                        if !finished && !self.runnable.any() {
                            for (ci, c) in self.cores.iter().enumerate() {
                                eprintln!(
                                    "deadlock: core {ci} done={} op={}/{} outstanding={} \
                                     blocked={:?}",
                                    c.done,
                                    c.op_idx,
                                    c.trace.len(),
                                    c.outstanding,
                                    c.blocked
                                );
                            }
                            for (id, rec) in &self.fills {
                                eprintln!(
                                    "deadlock: unretired fill id={id} core={} kind={:?}",
                                    rec.core, rec.kind
                                );
                            }
                            panic!(
                                "cores stalled with empty queues: simulator deadlock \
                                 (next controller wake {:?})",
                                self.ctrl.next_wake(now)
                            );
                        }
                    }
                    // Backlogged writebacks against a full queue cannot
                    // happen with an empty queue; flush will succeed next
                    // round.
                }
            }
        }
        // Final dirty data leaves the LLC.
        let _p = sam_obs::profile::phase("drain");
        let wbs = self.hierarchy.flush_dirty();
        let when = self.last_finish;
        for wb in wbs {
            self.issue_writeback(wb, when);
        }
        loop {
            let backlogged = self.wb_backlog.len();
            self.flush_backlog();
            match self.ctrl.schedule_one(self.ctrl.clock()) {
                Some(c) => self.handle_completion(c),
                None if self.wb_backlog.is_empty() => break,
                // An idle controller with a non-empty backlog must mean this
                // round's flush made room (and the next schedule_one will
                // complete something). If the backlog did not shrink either,
                // the drain can never finish — fail loudly like the main
                // loop instead of busy-spinning forever.
                None => assert!(
                    self.wb_backlog.len() < backlogged,
                    "writeback backlog stalled against an idle controller: simulator deadlock"
                ),
            }
        }

        let core_mem = self
            .cores
            .iter()
            .map(|c| self.cfg.cpu_to_mem(c.time_cpu))
            .max()
            .unwrap_or(0);
        let cycles = core_mem.max(self.last_finish).max(1);
        sam_obs::registry::SIM_CYCLES.add(cycles);
        self.ctrl.finish_epochs(cycles);
        if self.cfg.debug_cores {
            let times: Vec<Cycle> = self
                .cores
                .iter()
                .map(|c| self.cfg.cpu_to_mem(c.time_cpu))
                .collect();
            eprintln!(
                "[debug] core_mem_times={times:?} last_finish={} issued={:?}",
                self.last_finish,
                self.cores.iter().map(|c| c.issued).collect::<Vec<_>>()
            );
        }
        if let Some(p) = &mut self.probe {
            p(&self.hierarchy);
        }
        let (l1, l2, llc) = self.hierarchy.stats();
        let hist = self.ctrl.latency_histogram();
        let read_hist = self.ctrl.read_latency_histogram();
        let write_hist = self.ctrl.write_latency_histogram();
        RunResult {
            cycles,
            ctrl: self.ctrl.stats(),
            device: self.ctrl.device_stats(),
            cache: (*l1, *l2, *llc),
            stride_bursts: self.stride_bursts,
            line_bursts: self.line_bursts,
            ecc_bursts: self.ecc_bursts,
            writeback_bursts: self.writeback_bursts,
            bus_busy: self.ctrl.bus_busy(),
            latency_mean: hist.mean().unwrap_or(0.0),
            latency_p50: hist.percentile(0.5),
            latency_p99: hist.percentile(0.99),
            read_latency_mean: read_hist.mean().unwrap_or(0.0),
            read_latency_p99: read_hist.percentile(0.99),
            write_latency_mean: write_hist.mean().unwrap_or(0.0),
            write_latency_p99: write_hist.percentile(0.99),
            per_core: self.ctrl.per_core(),
            hybrid: self.ctrl.hybrid_summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{commodity, gs_dram, gs_dram_ecc, sam_en, sam_io, sam_sub};
    use crate::ops::{partition_records, TraceOp};

    fn scan_trace(records: u64, fields: Vec<u16>, cores: usize) -> Vec<Trace> {
        partition_records(0..records, cores, |r, t| {
            t.push(TraceOp::read_fields(r, fields.clone()));
            t.push(TraceOp::compute(4));
        })
    }

    fn whole_trace(records: u64, cores: usize) -> Vec<Trace> {
        partition_records(0..records, cores, |r, t| {
            t.push(TraceOp::read_whole(r));
            t.push(TraceOp::compute(4));
        })
    }

    fn table() -> TableSpec {
        TableSpec::ta(0, 4096)
    }

    #[test]
    fn empty_trace_returns_minimal_result() {
        let sys = System::new(SystemConfig::default(), commodity(), Store::Row);
        let r = sys.run(&[table()], &[vec![]]);
        assert_eq!(r.cycles, 1);
        assert_eq!(r.line_bursts, 0);
    }

    #[test]
    fn field_scan_issues_one_line_per_record_on_commodity() {
        let sys = System::new(SystemConfig::default(), commodity(), Store::Row);
        let traces = scan_trace(4096, vec![9], 4);
        let r = sys.run(&[table()], &traces);
        // 1KB records: each record's field 9 is in a distinct line.
        assert_eq!(r.line_bursts, 4096);
        assert_eq!(r.stride_bursts, 0);
        assert!(r.cycles > 4096, "at least a burst per record");
    }

    #[test]
    fn sam_en_scan_uses_8x_fewer_bursts() {
        let sys = System::new(SystemConfig::default(), sam_en(), Store::Row);
        let traces = scan_trace(4096, vec![9], 4);
        let r = sys.run(&[table()], &traces);
        // 4-bit granularity gathers 8 records per burst.
        assert_eq!(r.stride_bursts, 4096 / 8);
        assert_eq!(r.line_bursts, 0);
    }

    #[test]
    fn sam_en_beats_commodity_on_field_scans() {
        let traces = scan_trace(4096, vec![9], 4);
        let base =
            System::new(SystemConfig::default(), commodity(), Store::Row).run(&[table()], &traces);
        let sam =
            System::new(SystemConfig::default(), sam_en(), Store::Row).run(&[table()], &traces);
        let speedup = base.cycles as f64 / sam.cycles as f64;
        assert!(speedup > 2.0, "speedup {speedup:.2} too low");
    }

    #[test]
    fn whole_record_scans_do_not_regress_much_on_sam_io() {
        let traces = whole_trace(1024, 4);
        let base =
            System::new(SystemConfig::default(), commodity(), Store::Row).run(&[table()], &traces);
        let io =
            System::new(SystemConfig::default(), sam_io(), Store::Row).run(&[table()], &traces);
        let ratio = io.cycles as f64 / base.cycles as f64;
        assert!(ratio < 1.1, "SAM-IO Qs overhead {ratio:.3} must stay small");
    }

    #[test]
    fn whole_record_scans_regress_on_sam_sub() {
        let traces = whole_trace(1024, 4);
        let base =
            System::new(SystemConfig::default(), commodity(), Store::Row).run(&[table()], &traces);
        let sub =
            System::new(SystemConfig::default(), sam_sub(), Store::Row).run(&[table()], &traces);
        let ratio = sub.cycles as f64 / base.cycles as f64;
        assert!(
            ratio > 1.1,
            "vertical alignment must cost something, got {ratio:.3}"
        );
    }

    #[test]
    fn gs_dram_ecc_pays_extra_bursts() {
        let traces = scan_trace(4096, vec![9], 4);
        let gs =
            System::new(SystemConfig::default(), gs_dram(), Store::Row).run(&[table()], &traces);
        let gse = System::new(SystemConfig::default(), gs_dram_ecc(), Store::Row)
            .run(&[table()], &traces);
        assert_eq!(gs.ecc_bursts, 0);
        assert!(gse.ecc_bursts > 0);
        assert!(gse.cycles > gs.cycles);
    }

    #[test]
    fn mode_switches_counted_for_sam_only() {
        let traces = scan_trace(1024, vec![9], 4);
        let sam =
            System::new(SystemConfig::default(), sam_en(), Store::Row).run(&[table()], &traces);
        let gs =
            System::new(SystemConfig::default(), gs_dram(), Store::Row).run(&[table()], &traces);
        assert!(sam.device.mode_switches >= 1);
        assert_eq!(gs.device.mode_switches, 0);
    }

    #[test]
    fn column_store_is_fast_for_scans() {
        let traces = scan_trace(4096, vec![9], 4);
        let row =
            System::new(SystemConfig::default(), commodity(), Store::Row).run(&[table()], &traces);
        let col = System::new(SystemConfig::default(), commodity(), Store::Column)
            .run(&[table()], &traces);
        assert!(
            col.cycles * 3 < row.cycles,
            "column store should win scans big"
        );
    }

    #[test]
    fn writes_produce_writeback_bursts() {
        let sys = System::new(SystemConfig::default(), commodity(), Store::Row);
        let traces = partition_records(0..2048, 4, |r, t| {
            t.push(TraceOp::write_fields(r, vec![3]));
        });
        let r = sys.run(&[table()], &traces);
        assert!(r.writeback_bursts > 0, "dirty lines must be written back");
    }

    #[test]
    fn stride_writeback_merging_limits_write_bursts() {
        let sys = System::new(SystemConfig::default(), sam_en(), Store::Row);
        let traces = partition_records(0..2048, 4, |r, t| {
            t.push(TraceOp::write_fields(r, vec![3]));
        });
        let r = sys.run(&[table()], &traces);
        // 2048 records / 8 per group = 256 groups; one read + ~one write
        // burst per group (merging may slightly exceed due to timing).
        assert!(
            r.writeback_bursts <= 2048 / 8 * 2,
            "writeback bursts {} not combined",
            r.writeback_bursts
        );
    }

    #[test]
    fn result_utilization_in_range() {
        let sys = System::new(SystemConfig::default(), commodity(), Store::Row);
        let traces = scan_trace(512, vec![0], 2);
        let r = sys.run(&[table()], &traces);
        let u = r.bus_utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
        assert!(r.seconds(1200) > 0.0);
    }

    #[test]
    fn dgms_uses_narrow_bursts_for_sparse_fields() {
        use crate::designs::dgms;
        let sys = System::new(SystemConfig::default(), dgms(), Store::Row);
        let traces = scan_trace(2048, vec![9], 4);
        let r = sys.run(&[table()], &traces);
        // One narrow burst per record (no gathering), quarter bus each.
        assert_eq!(r.line_bursts, 2048);
        assert_eq!(r.stride_bursts, 0);
        assert_eq!(r.bus_busy, 2048, "narrow bursts carry quarter bandwidth");
    }

    #[test]
    fn dgms_does_not_beat_baseline_on_strided_scans() {
        // The Section 1 claim: strided data share a word offset, hence a
        // sub-rank, so sub-ranking cannot overlap them.
        use crate::designs::dgms;
        let traces = scan_trace(4096, vec![9], 4);
        let base =
            System::new(SystemConfig::default(), commodity(), Store::Row).run(&[table()], &traces);
        let sub = System::new(SystemConfig::default(), dgms(), Store::Row).run(&[table()], &traces);
        let ratio = base.cycles as f64 / sub.cycles as f64;
        assert!(
            ratio < 1.15,
            "sub-ranking must not fix strided scans: {ratio:.2}"
        );
    }

    #[test]
    fn latency_stats_populated() {
        let sys = System::new(SystemConfig::default(), commodity(), Store::Row);
        let traces = scan_trace(512, vec![0], 2);
        let r = sys.run(&[table()], &traces);
        assert!(r.latency_mean > 0.0);
        assert!(r.latency_p50 <= r.latency_p99);
        assert!(r.latency_p99 > 0);
        // Read-side percentiles are populated for a read-only scan; the
        // write-side ones stay empty.
        assert!(r.read_latency_mean > 0.0);
        assert!(r.read_latency_p99 > 0);
        assert_eq!(r.write_latency_p99, 0);
    }

    /// The bench sweep runner executes whole simulations on worker
    /// threads; the system (controller, device, caches, observer slot)
    /// must be `Send`.
    #[test]
    fn system_and_result_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<System>();
        assert_send::<RunResult>();
    }

    #[test]
    fn prefetch_never_changes_traffic_correctness() {
        // Prefetching may add fills but never drops any: the same sectors
        // end up resident and the run completes.
        let cfg = SystemConfig {
            prefetch_degree: 4,
            ..Default::default()
        };
        let sys = System::new(cfg, commodity(), Store::Row);
        let traces = whole_trace(256, 2);
        let r = sys.run(&[table()], &traces);
        assert!(r.line_bursts >= 256 * 16, "at least the demand fills");
    }

    /// Tracing and epoch recording are observational: a traced run returns
    /// exactly the untraced RunResult, while producing events and epoch
    /// rows whose sums match the end-of-run counters.
    #[test]
    fn traced_run_matches_untraced_run() {
        use std::sync::{Arc, Mutex};
        let sys = System::new(SystemConfig::default(), sam_en(), Store::Row);
        let tables = [table()];
        let traces = scan_trace(1024, vec![9], 4);
        let plain = sys.run(&tables, &traces);

        let ring = Arc::new(Mutex::new(sam_trace::RingRecorder::new(1 << 16)));
        let epochs = Arc::new(Mutex::new(sam_trace::EpochRecorder::new(5_000)));
        let mut instr = Instrumentation {
            trace: Some(ring.clone()),
            epochs: Some(epochs.clone()),
            ..Default::default()
        };
        let traced = sys.run_instrumented(&tables, &traces, &mut instr);
        assert_eq!(traced, plain, "tracing must not perturb the simulation");

        let ring = ring.lock().unwrap();
        assert!(!ring.is_empty(), "an active run must produce events");
        assert!(
            ring.events().any(|e| e.name == "miss"),
            "cache misses must be traced"
        );
        #[cfg(feature = "check")]
        assert!(
            ring.events().any(|e| e.name == "SRD"),
            "stride reads must appear on bank lanes via the observer"
        );
        let epochs = epochs.lock().unwrap();
        let sum = epochs.sum();
        assert_eq!(sum.reads, traced.ctrl.reads_done);
        assert_eq!(sum.writes, traced.ctrl.writes_done);
        assert_eq!(sum.latency, traced.ctrl.total_latency);
        assert_eq!(sum.bus_busy, traced.bus_busy);
        assert!(
            epochs.rows().iter().any(|r| r.mlp_peak > 0),
            "MLP gauge must observe outstanding misses"
        );
    }

    /// The starvation-cap override chain: CLI/system config wins over the
    /// design preference; both reach the controller.
    #[test]
    fn starvation_cap_override_reaches_controller() {
        let traces = scan_trace(1024, vec![9], 4);
        let tables = [table()];
        let base =
            System::new(SystemConfig::default(), commodity(), Store::Row).run(&tables, &traces);
        // A zero cap forces pure FCFS: every decision with any queued
        // request older than `now` fires the guard.
        let cfg = SystemConfig {
            starvation_cap: Some(0),
            ..Default::default()
        };
        let fcfs = System::new(cfg, commodity(), Store::Row).run(&tables, &traces);
        assert_eq!(
            base.ctrl.starvation_forced, 0,
            "default cap never fires here"
        );
        assert!(
            fcfs.ctrl.starvation_forced > 0,
            "zero cap must force FCFS decisions"
        );
    }

    /// The tentpole invariant at system level: per-(core, kind) lanes are
    /// populated by a multicore run and telescope exactly to the aggregate
    /// controller counters, with demand fills attributed per core and
    /// writebacks attributed to the core whose line is evicted.
    #[test]
    fn per_core_lanes_populate_and_telescope() {
        use sam_memctrl::request::ReqKind;
        let sys = System::new(SystemConfig::default(), sam_en(), Store::Row);
        let traces = partition_records(0..2048, 4, |r, t| {
            t.push(TraceOp::write_fields(r, vec![3]));
            t.push(TraceOp::read_fields(r, vec![9]));
        });
        let r = sys.run(&[TableSpec::ta(0, 4096)], &traces);
        let total = r.per_core.total();
        assert_eq!(total.reads_done, r.ctrl.reads_done);
        assert_eq!(total.writes_done, r.ctrl.writes_done);
        assert_eq!(total.row_hits, r.ctrl.row_hits);
        assert_eq!(total.row_misses, r.ctrl.row_misses);
        assert_eq!(total.row_conflicts, r.ctrl.row_conflicts);
        assert_eq!(total.total_latency, r.ctrl.total_latency);
        assert_eq!(total.starvation_forced, r.ctrl.starvation_forced);
        // All four cores issued demand traffic...
        let active = (0..4)
            .filter(|&c| r.per_core.lane(c, ReqKind::Demand).reads_done > 0)
            .count();
        assert_eq!(active, 4, "every core's demand fills must be attributed");
        // ...and writebacks are spread across owners, not lumped on core 0.
        let wb_owners = (0..4)
            .filter(|&c| r.per_core.lane(c, ReqKind::Writeback).writes_done > 0)
            .count();
        assert!(
            wb_owners >= 2,
            "writebacks must follow their owning cores, got {wb_owners} owners"
        );
        assert!(r.writeback_bursts > 0, "the workload must write back");
    }

    #[test]
    #[should_panic(expected = "more traces than cores")]
    fn too_many_traces_rejected() {
        let cfg = SystemConfig {
            cores: 1,
            ..Default::default()
        };
        let sys = System::new(cfg, commodity(), Store::Row);
        let _ = sys.run(&[table()], &[vec![], vec![]]);
    }
}

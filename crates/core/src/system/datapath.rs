//! Writeback datapath: dirty-eviction lowering (stride write-combining vs
//! regular write bursts) and the overflow backlog that absorbs writebacks
//! the controller queue cannot take yet.
//!
//! Victims arrive from the cache hierarchy carrying the core that
//! installed the line ([`sam_cache::set_assoc::Victim::owner`]); that
//! owner becomes the [`Provenance`] of the writeback burst, so write
//! traffic is charged to the core whose data is evicted rather than
//! blanket-attributed to core 0.

use sam_dram::moderegs::IoMode;
use sam_dram::Cycle;
use sam_memctrl::request::{MemRequest, Provenance, ReqKind, StrideSpec};

use crate::design::EccScheme;

use super::completion::{FillKind, FillRecord};
use super::Engine;

impl<'t> Engine<'t> {
    /// Enqueues a writeback; dirty partial lines use stride writes (sstore)
    /// with write-combining on the burst address.
    pub(super) fn issue_writeback(&mut self, wb: sam_cache::hierarchy::Writeback, when: Cycle) {
        let line = wb.line_addr;
        let prov = Provenance::new(wb.owner, ReqKind::Writeback);
        let full_line = wb.sectors.all_valid() && wb.sectors.dirty_sectors().len() == 4;
        let stride_info = if full_line {
            None
        } else {
            self.line_to_burst.get(&line).copied()
        };
        match stride_info {
            Some((burst_addr, lane)) => {
                if self.wb_merge.contains(&burst_addr) {
                    return; // combined with a pending stride writeback
                }
                let id = self.fresh_id();
                let caps = self
                    .design
                    .stride
                    .expect("stride fills recorded imply caps");
                let req = if caps.needs_mode_switch {
                    MemRequest::stride_write(
                        id,
                        burst_addr,
                        StrideSpec {
                            gather: self.cfg.granularity.gather(),
                            mode: IoMode::Sx4(lane),
                        },
                    )
                } else {
                    MemRequest::write(id, burst_addr)
                }
                .with_provenance(prov);
                // The key is held from now until the burst completes, even
                // while it waits in the backlog: later group-mates merge.
                self.wb_merge.insert(burst_addr);
                self.writeback_bursts += 1;
                if self.ctrl.enqueue(req, when).is_ok() {
                    self.fills.insert(
                        id,
                        FillRecord {
                            core: wb.owner as usize,
                            kind: FillKind::StrideWb { key: burst_addr },
                        },
                    );
                } else {
                    self.wb_backlog.push_back((req, when, Some(burst_addr)));
                }
            }
            None => {
                let table = self.placements.iter().find(|p| {
                    let spec = p.spec();
                    line >= spec.base && line < spec.base + 4 * spec.data_bytes()
                });
                let dram_addr = table.map_or(line, |p| p.dram_addr_regular(line));
                let id = self.fresh_id();
                let req = MemRequest::write(id, dram_addr).with_provenance(prov);
                self.writeback_bursts += 1;
                if self.ctrl.enqueue(req, when).is_ok() {
                    self.fills.insert(
                        id,
                        FillRecord {
                            core: wb.owner as usize,
                            kind: FillKind::Traffic,
                        },
                    );
                } else {
                    self.wb_backlog.push_back((req, when, None));
                }
                if self.design.ecc == EccScheme::Embedded {
                    for _ in 0..self.cfg.ecc_write_extra {
                        self.issue_ecc_burst(wb.owner as usize, dram_addr, when, true);
                    }
                }
            }
        }
    }

    pub(super) fn flush_backlog(&mut self) {
        while let Some(&(req, when, key)) = self.wb_backlog.front() {
            if self.ctrl.enqueue(req, when).is_err() {
                break;
            }
            self.wb_backlog.pop_front();
            let kind = match key {
                Some(k) => FillKind::StrideWb { key: k },
                None => FillKind::Traffic,
            };
            // Backlogged requests already carry their provenance; the fill
            // record reuses it so attribution survives the detour.
            self.fills.insert(
                req.id,
                FillRecord {
                    core: req.prov.core as usize,
                    kind,
                },
            );
        }
    }
}

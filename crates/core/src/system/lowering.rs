//! Design lowering: turning a missing 16B touch into tagged memory
//! requests — stride gathers, narrow sub-ranked bursts, regular line
//! fills, next-line prefetches, and embedded-ECC extras.
//!
//! Every request built here carries a [`Provenance`] naming the issuing
//! core and the lowering path, so the controller's per-core lanes and the
//! per-core trace lanes attribute each burst without the scheduler ever
//! reading the tag.

use sam_dram::moderegs::IoMode;
use sam_dram::Cycle;
use sam_memctrl::request::{MemRequest, Provenance, ReqKind, StrideSpec};

use crate::design::EccScheme;

use super::completion::{FillKind, FillRecord};
use super::Engine;

impl<'t> Engine<'t> {
    /// Builds and enqueues the memory request(s) for a missing touch.
    /// Returns `false` when the controller queue is full.
    pub(super) fn issue_fill(&mut self, ci: usize, t: super::core_engine::SectorTouch) -> bool {
        let arrival = self.cfg.cpu_to_mem(self.cores[ci].time_cpu);
        let (stride, dram_line) = {
            let p = &self.placements[t.table as usize];
            let stride = if t.field_access {
                p.stride_fill(t.record, t.field as u32)
            } else {
                None
            };
            (stride, p.dram_addr_for(t.record, t.field as u32) & !63)
        };
        match stride {
            Some(fill) => {
                let id = self.fresh_id();
                let caps = self.design.stride.expect("stride fill implies caps");
                let req = if caps.needs_mode_switch {
                    MemRequest::stride_read(
                        id,
                        fill.burst_addr,
                        StrideSpec {
                            gather: self.cfg.granularity.gather(),
                            mode: IoMode::Sx4(fill.lane),
                        },
                    )
                } else {
                    // GS-DRAM / RC-NVM widen the command interface instead of
                    // switching modes: schedule as a plain burst.
                    MemRequest::read(id, fill.burst_addr)
                }
                .with_provenance(Provenance::demand(ci as u8));
                if self.ctrl.enqueue(req, arrival).is_err() {
                    return false;
                }
                self.stride_bursts += 1;
                for &s in &fill.sector_addrs {
                    self.pending_sectors.insert(s);
                    self.line_to_burst
                        .insert(s & !63, (fill.burst_addr, fill.lane));
                }
                // Another core blocked on one of these sectors now MSHR-
                // merges instead of missing.
                for &s in &fill.sector_addrs {
                    self.wake_covering_sector(s);
                }
                self.fills.insert(
                    id,
                    FillRecord {
                        core: ci,
                        kind: FillKind::Sectors {
                            sector_addrs: fill.sector_addrs.clone(),
                        },
                    },
                );
                self.cores[ci].outstanding += 1;
                self.consume_slot(ci);
                // RC-NVM-bit gathers bit-level sub-fields: an extra column
                // burst every `extra_burst_period` stride bursts.
                if caps.extra_burst_period > 0 {
                    self.extra_burst_count += 1;
                    if self.extra_burst_count >= caps.extra_burst_period {
                        self.extra_burst_count = 0;
                        let id = self.fresh_id();
                        let extra = MemRequest::read(id, fill.burst_addr + 64)
                            .with_provenance(Provenance::new(ci as u8, ReqKind::Traffic));
                        self.stride_bursts += 1;
                        if self.ctrl.enqueue(extra, arrival).is_ok() {
                            self.fills.insert(
                                id,
                                FillRecord {
                                    core: ci,
                                    kind: FillKind::Traffic,
                                },
                            );
                        } else {
                            self.wb_backlog.push_back((extra, arrival, None));
                        }
                    }
                }
                // Embedded ECC cannot co-fetch codes for scattered rows.
                if self.design.ecc == EccScheme::Embedded {
                    self.ecc_stride_count += 1;
                    if self.ecc_stride_count >= self.cfg.ecc_stride_period {
                        self.ecc_stride_count = 0;
                        self.issue_ecc_burst(ci, fill.burst_addr, arrival, false);
                    }
                }
                true
            }
            None if self.design.sub_ranked && t.field_access => {
                // DGMS-style narrow access: fetch only the touched 16B
                // sector over one channel sub-lane. Strided scans keep
                // hitting the same word offset — the same sub-lane — so
                // they serialize (the Section 1 motivation), while random
                // accesses across offsets overlap four-wide.
                let id = self.fresh_id();
                let sector_in_line = t.cache_sector & 63;
                let req = MemRequest::narrow_read(id, dram_line + sector_in_line)
                    .with_provenance(Provenance::demand(ci as u8));
                if self.ctrl.enqueue(req, arrival).is_err() {
                    return false;
                }
                self.line_bursts += 1;
                self.pending_sectors.insert(t.cache_sector);
                self.wake_covering_sector(t.cache_sector);
                self.fills.insert(
                    id,
                    FillRecord {
                        core: ci,
                        kind: FillKind::Sectors {
                            sector_addrs: vec![t.cache_sector],
                        },
                    },
                );
                self.cores[ci].outstanding += 1;
                self.consume_slot(ci);
                true
            }
            None => {
                let id = self.fresh_id();
                let cache_line = t.cache_sector & !63;
                let dram_addr = dram_line;
                let req =
                    MemRequest::read(id, dram_addr).with_provenance(Provenance::demand(ci as u8));
                if self.ctrl.enqueue(req, arrival).is_err() {
                    return false;
                }
                self.line_bursts += 1;
                self.pending_lines.insert(cache_line);
                self.wake_covering_line(cache_line);
                self.fills.insert(
                    id,
                    FillRecord {
                        core: ci,
                        kind: FillKind::Line { cache_line },
                    },
                );
                self.cores[ci].outstanding += 1;
                self.consume_slot(ci);
                // Next-line stream prefetch: a sequential miss pattern pulls
                // the following lines without occupying the core's window.
                if self.cfg.prefetch_degree > 0 {
                    let sequential = self.last_miss_line[ci].wrapping_add(64) == cache_line;
                    self.last_miss_line[ci] = cache_line;
                    if sequential {
                        for d in 1..=self.cfg.prefetch_degree as u64 {
                            let next = cache_line + d * 64;
                            if self.pending_lines.contains(&next) {
                                continue;
                            }
                            let pid = self.fresh_id();
                            let preq = MemRequest::read(pid, dram_addr + d * 64)
                                .with_provenance(Provenance::new(ci as u8, ReqKind::Prefetch));
                            if self.ctrl.enqueue(preq, arrival).is_ok() {
                                self.line_bursts += 1;
                                self.pending_lines.insert(next);
                                self.wake_covering_line(next);
                                self.fills.insert(
                                    pid,
                                    FillRecord {
                                        core: ci,
                                        kind: FillKind::Prefetch { cache_line: next },
                                    },
                                );
                            }
                        }
                    }
                }
                if self.design.ecc == EccScheme::Embedded {
                    self.ecc_seq_count += 1;
                    if self.ecc_seq_count >= self.cfg.ecc_seq_period {
                        self.ecc_seq_count = 0;
                        self.issue_ecc_burst(ci, dram_addr, arrival, false);
                    }
                }
                true
            }
        }
    }

    /// Fire-and-forget embedded-ECC burst near `data_addr`, attributed to
    /// the core whose data access made it necessary.
    pub(super) fn issue_ecc_burst(
        &mut self,
        core: usize,
        data_addr: u64,
        arrival: Cycle,
        write: bool,
    ) {
        let id = self.fresh_id();
        // ECC words live in the top eighth of the same row (in-page).
        let row = data_addr & !8191;
        let ecc_addr = row + 7 * 1024 + ((data_addr >> 9) & 0x3C0);
        let req = if write {
            MemRequest::write(id, ecc_addr)
        } else {
            MemRequest::read(id, ecc_addr)
        }
        .with_provenance(Provenance::new(core as u8, ReqKind::EccExtra));
        self.ecc_bursts += 1;
        if self.ctrl.enqueue(req, arrival).is_ok() {
            self.fills.insert(
                id,
                FillRecord {
                    core,
                    kind: FillKind::Traffic,
                },
            );
        } else {
            self.wb_backlog.push_back((req, arrival, None));
        }
    }
}

//! SAM: the paper's memory designs, the baselines it compares against, and a
//! full-system simulator that runs IMDB-style access traces through a cache
//! hierarchy, memory controller, and cycle-level device model.
//!
//! The crate is organized around three ideas:
//!
//! 1. A **design** ([`design::Design`]) is a hardware configuration: which
//!    substrate (DRAM/RRAM), how much area overhead (which scales array
//!    latencies per Section 6.1), whether and how it supports stride-mode
//!    accesses, its record-alignment policy, and its ECC scheme. The eight
//!    designs of Figure 12 are constructed in [`designs`].
//! 2. A **trace** ([`ops`]) is a design-independent description of what a
//!    query touches: which fields of which records, reads or writes, plus
//!    compute. The IMDB engine (`sam-imdb`) compiles queries into traces.
//! 3. The **system** ([`system::System`]) lowers a trace under a design and
//!    a table store layout ([`layout`]), drives it through the sector-cache
//!    hierarchy and FR-FCFS controller, and reports cycles, command counts,
//!    and cache statistics — everything Figures 12–15 need.
//!
//! # Example
//!
//! ```
//! use sam::designs::{commodity, sam_en};
//! use sam::layout::{TableSpec, Store};
//! use sam::ops::TraceOp;
//! use sam::system::{System, SystemConfig};
//!
//! let table = TableSpec::new(0x1000_0000, 16, 1000); // 16 fields, 1000 records
//! // Scan field 3 of every record.
//! let trace: Vec<TraceOp> = (0..1000)
//!     .map(|r| TraceOp::read_fields(r, vec![3]))
//!     .collect();
//!
//! let base = System::new(SystemConfig::default(), commodity(), Store::Row)
//!     .run(&[table], &[trace.clone()]);
//! let sam = System::new(SystemConfig::default(), sam_en(), Store::Row)
//!     .run(&[table], &[trace]);
//! assert!(sam.cycles < base.cycles, "strided scans are faster under SAM");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod designs;
pub mod isa;
pub mod layout;
pub mod ops;
pub mod os;
pub mod properties;
pub mod system;

pub use sam_dram::Cycle;

//! The memory-design abstraction: everything that distinguishes SAM-sub,
//! SAM-IO, SAM-en, GS-DRAM(-ecc), and RC-NVM(-bit/-wd) from commodity DRAM.

use sam_dram::device::DeviceConfig;
use sam_dram::timing::Substrate;
use sam_ecc::layout::CodewordLayout;

/// Strided granularity per chip (Section 4.4): how many bits of each strided
/// unit one chip contributes, which fixes how many consecutive cachelines a
/// burst gathers and the matching chipkill symbol size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// 16 bits per chip: 32B units, gathers 2 lines (coarsest).
    Bits16,
    /// 8 bits per chip: 16B units, gathers 4 lines; matches SSC symbols.
    Bits8,
    /// 4 bits per chip: 8B units, gathers 8 lines (two ranks fill the
    /// channel); matches SSC-DSD symbols. The paper's default (Figure 12).
    #[default]
    Bits4,
}

impl Granularity {
    /// Cachelines gathered per stride burst.
    pub fn gather(self) -> u8 {
        match self {
            Granularity::Bits16 => 2,
            Granularity::Bits8 => 4,
            Granularity::Bits4 => 8,
        }
    }

    /// Bytes of each gathered unit (64B burst / gather).
    pub fn unit_bytes(self) -> u64 {
        64 / self.gather() as u64
    }

    /// Width of the Figure 10 page-offset swap segment.
    pub fn remap_segment_bits(self) -> u32 {
        match self {
            Granularity::Bits16 => 2, // clamp: Figure 10 defines 2 and 3
            Granularity::Bits8 => 2,
            Granularity::Bits4 => 3,
        }
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Granularity::Bits16 => write!(f, "16-bit"),
            Granularity::Bits8 => write!(f, "8-bit"),
            Granularity::Bits4 => write!(f, "4-bit"),
        }
    }
}

/// ECC scheme a design runs under (Section 2.3, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccScheme {
    /// Rank-level chipkill (SSC or SSC-DSD): parity travels with the data
    /// in the same burst; no extra traffic.
    Chipkill,
    /// Embedded ECC (the GS-DRAM-ecc enhancement, after \[55\]): ECC words
    /// live in the same page as their data and cost extra bursts.
    Embedded,
    /// No ECC protection at all (plain GS-DRAM under strided access).
    Unprotected,
}

/// How the design requires IMDB records to be aligned in physical memory
/// (Section 5.4.1, Figure 11), which determines the bank behaviour of
/// sequential (Qs) scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignmentPolicy {
    /// Default linear placement; consecutive data walks across banks
    /// (commodity, GS-DRAM, SAM-IO, SAM-en: gathering happens inside a row).
    Linear,
    /// Records are aligned vertically across the rows of one bank so that a
    /// column-wise access can gather them (SAM-sub, RC-NVM). Sequential
    /// scans then hammer a single bank's rows: `depth` DRAM rows stack in
    /// one bank before placement moves to the next bank.
    VerticalRows {
        /// DRAM rows stacked per bank region.
        depth: u32,
    },
}

/// Stride-access capabilities and costs of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrideCaps {
    /// Whether entering/leaving stride accesses needs an I/O mode switch
    /// (MRS + tRTR — SAM; GS-DRAM modified the command interface instead).
    pub needs_mode_switch: bool,
    /// Every `N`th stride burst costs one extra column operation (0 = never).
    /// RC-NVM-bit must collect words from bit-level sub-fields; adjacent
    /// sub-fields share column activations, so on average the bit-level
    /// symmetry costs one extra column operation every other burst.
    pub extra_burst_period: u32,
    /// Whether switching to a different field block costs a column-to-column
    /// switch (an extra column operation): accessing a new field in RC-NVM
    /// (and SAM-sub) re-drives the orthogonal selection in the same bank
    /// (Section 6.2's "high latency of field switch").
    pub field_switch_cost: bool,
}

/// Inputs to the power model that differ per design (Section 6.1 "Power").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerTraits {
    /// Ratio of internally moved data to transferred data for stride reads
    /// (SAM-IO fetches 4 buffers but sends one lane: 4.0; SAM-en's
    /// fine-grained activation avoids it: 1.0).
    pub stride_overfetch: f64,
    /// Extra background power fraction (SAM-sub's +2% decode/SA logic).
    pub background_extra: f64,
    /// Fine-grained activation (SAM-en option 1): ACT energy scales with
    /// the fraction of mats actually opened.
    pub fine_grained_activation: bool,
}

impl PowerTraits {
    /// Commodity defaults: no overfetch, no extra background.
    pub fn commodity() -> Self {
        Self {
            stride_overfetch: 1.0,
            background_extra: 0.0,
            fine_grained_activation: false,
        }
    }
}

/// A complete hardware design under evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Short display name used in figures ("SAM-en", "RC-NVM-wd", ...).
    pub name: &'static str,
    /// Memory substrate.
    pub substrate: Substrate,
    /// Silicon area overhead vs. commodity (scales array latencies per
    /// Section 6.1).
    pub area_overhead: f64,
    /// Extra storage consumed (embedded ECC bits, duplicated copies).
    pub storage_overhead: f64,
    /// Stride support; `None` means field scans fall back to line fills.
    pub stride: Option<StrideCaps>,
    /// Sub-ranked memory (the AGMS/DGMS baselines of Section 1): sparse
    /// field accesses become narrow 16B bursts on one channel sub-lane.
    pub sub_ranked: bool,
    /// Record alignment policy (drives Qs-query bank behaviour).
    pub alignment: AlignmentPolicy,
    /// ECC scheme.
    pub ecc: EccScheme,
    /// How codewords map onto bursts (reliability analysis; Table 1).
    pub codeword_layout: CodewordLayout,
    /// Whether the layout preserves critical-word-first (Table 1).
    pub critical_word_first: bool,
    /// Power-model traits.
    pub power: PowerTraits,
    /// FR-FCFS starvation-cap override in memory cycles (`None` keeps the
    /// controller default). Designs with slower substrates or heavier
    /// row-switch costs may want a different fairness/locality trade-off.
    pub starvation_cap: Option<u64>,
    /// Write-drain high-watermark override: occupancy at which the
    /// controller latches into draining writes (`None` keeps the
    /// controller default, 28 of 32). Paired with [`Self::drain_lo`];
    /// the controller requires `lo < hi <= write_queue_capacity`.
    pub drain_hi: Option<usize>,
    /// Write-drain low-watermark override: occupancy at which the drain
    /// latch resets and reads regain priority (`None` keeps the
    /// controller default, 8).
    pub drain_lo: Option<usize>,
}

impl Design {
    /// The device configuration this design runs on: substrate timing with
    /// area-proportional latency scaling applied.
    pub fn device_config(&self) -> DeviceConfig {
        let base = match self.substrate {
            Substrate::Dram => DeviceConfig::ddr4_server(),
            Substrate::Rram => DeviceConfig::rram_server(),
        };
        let timing = base.timing.scaled_by_area(self.area_overhead);
        debug_assert!(
            timing.check_relations().is_empty(),
            "design {:?} derives JEDEC-inconsistent timing: {:?}",
            self.name,
            timing.check_relations()
        );
        base.with_timing(timing)
    }

    /// Whether field scans can use stride bursts.
    pub fn supports_stride(&self) -> bool {
        self.stride.is_some()
    }

    /// Returns a copy with the substrate (and its base timing) swapped —
    /// the Figure 14(a) experiment.
    pub fn with_substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = substrate;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_gather_and_units() {
        assert_eq!(Granularity::Bits16.gather(), 2);
        assert_eq!(Granularity::Bits8.gather(), 4);
        assert_eq!(Granularity::Bits4.gather(), 8);
        assert_eq!(Granularity::Bits16.unit_bytes(), 32);
        assert_eq!(Granularity::Bits8.unit_bytes(), 16);
        assert_eq!(Granularity::Bits4.unit_bytes(), 8);
        assert_eq!(Granularity::default(), Granularity::Bits4);
    }

    #[test]
    fn remap_segment_matches_figure10() {
        assert_eq!(Granularity::Bits8.remap_segment_bits(), 2);
        assert_eq!(Granularity::Bits4.remap_segment_bits(), 3);
    }

    #[test]
    fn granularity_display() {
        assert_eq!(Granularity::Bits4.to_string(), "4-bit");
    }
}

//! The ISA extension of Section 5.1.2: `sload` and `sstore`.
//!
//! The paper adds two instructions that inform the memory controller to set
//! the memory into stride mode over the C/A bus:
//!
//! ```text
//! sload  reg, addr
//! sstore reg, addr
//! ```
//!
//! This module makes the extension concrete: a RISC-style 32-bit encoding
//! for a minimal kernel ISA (loads/stores, their strided variants, ALU ops,
//! and a counted loop), an assembler-level [`Program`] builder, and an
//! [`Interpreter`] that executes kernels against byte-addressable memory
//! while logging every memory access with its stride attribute — the log is
//! exactly what the memory controller sees, so tests can verify that an
//! `sload`-based field-scan kernel (a) computes the same result as a scalar
//! kernel and (b) emits strided accesses.

use std::collections::BTreeMap;

/// Machine registers (x0 is hardwired to zero, as tradition demands).
pub const NUM_REGS: usize = 16;

/// One instruction of the kernel ISA.
///
/// Field conventions: `rd` destination register, `rs1` base/source register,
/// `rs2` second source, `imm` immediate.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `reg <- imm` (16-bit immediate, zero-extended).
    Li { rd: u8, imm: u16 },
    /// `rd <- rs1 + rs2`.
    Add { rd: u8, rs1: u8, rs2: u8 },
    /// `rd <- rs1 + imm` (sign-extended 12-bit immediate).
    Addi { rd: u8, rs1: u8, imm: i16 },
    /// `rd <- mem[rs1 + imm]` — a regular 64-bit load.
    Load { rd: u8, rs1: u8, imm: i16 },
    /// `mem[rs1 + imm] <- rs2` — a regular 64-bit store.
    Store { rs2: u8, rs1: u8, imm: i16 },
    /// `rd <- mem[rs1 + imm]` under stride mode (the paper's `sload`).
    SLoad { rd: u8, rs1: u8, imm: i16 },
    /// `mem[rs1 + imm] <- rs2` under stride mode (the paper's `sstore`).
    SStore { rs2: u8, rs1: u8, imm: i16 },
    /// Decrement `rd`; branch back `offset` instructions if nonzero.
    Loop { rd: u8, offset: u8 },
    /// Stop.
    Halt,
}

impl Inst {
    /// Encodes into a 32-bit instruction word:
    /// `[31:26] opcode | [25:22] rd | [21:18] rs1 | [17:14] rs2 | [13:0]/[15:0] imm`.
    pub fn encode(self) -> u32 {
        let pack = |op: u32, rd: u8, rs1: u8, rs2: u8, imm: u16| -> u32 {
            debug_assert!(
                (rd as usize) < NUM_REGS && (rs1 as usize) < NUM_REGS && (rs2 as usize) < NUM_REGS
            );
            (op << 26)
                | ((rd as u32) << 22)
                | ((rs1 as u32) << 18)
                | ((rs2 as u32) << 14)
                | (imm as u32 & 0x3FFF)
        };
        match self {
            Inst::Li { rd, imm } => ((rd as u32) << 22) | imm as u32, // opcode 0
            Inst::Add { rd, rs1, rs2 } => pack(1, rd, rs1, rs2, 0),
            Inst::Addi { rd, rs1, imm } => pack(2, rd, rs1, 0, imm as u16 & 0x3FFF),
            Inst::Load { rd, rs1, imm } => pack(3, rd, rs1, 0, imm as u16 & 0x3FFF),
            Inst::Store { rs2, rs1, imm } => pack(4, 0, rs1, rs2, imm as u16 & 0x3FFF),
            Inst::SLoad { rd, rs1, imm } => pack(5, rd, rs1, 0, imm as u16 & 0x3FFF),
            Inst::SStore { rs2, rs1, imm } => pack(6, 0, rs1, rs2, imm as u16 & 0x3FFF),
            Inst::Loop { rd, offset } => pack(7, rd, 0, 0, offset as u16),
            Inst::Halt => 8 << 26,
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns the raw word on an unknown opcode.
    pub fn decode(word: u32) -> Result<Inst, u32> {
        let op = word >> 26;
        let rd = ((word >> 22) & 0xF) as u8;
        let rs1 = ((word >> 18) & 0xF) as u8;
        let rs2 = ((word >> 14) & 0xF) as u8;
        let imm14 = (word & 0x3FFF) as u16;
        let simm = |v: u16| -> i16 {
            // sign-extend 14-bit
            ((v << 2) as i16) >> 2
        };
        Ok(match op {
            0 => Inst::Li {
                rd,
                imm: (word & 0xFFFF) as u16,
            },
            1 => Inst::Add { rd, rs1, rs2 },
            2 => Inst::Addi {
                rd,
                rs1,
                imm: simm(imm14),
            },
            3 => Inst::Load {
                rd,
                rs1,
                imm: simm(imm14),
            },
            4 => Inst::Store {
                rs2,
                rs1,
                imm: simm(imm14),
            },
            5 => Inst::SLoad {
                rd,
                rs1,
                imm: simm(imm14),
            },
            6 => Inst::SStore {
                rs2,
                rs1,
                imm: simm(imm14),
            },
            7 => Inst::Loop {
                rd,
                offset: imm14 as u8,
            },
            8 => Inst::Halt,
            _ => return Err(word),
        })
    }

    /// Whether this is one of the two stride-mode instructions.
    pub fn is_strided(self) -> bool {
        matches!(self, Inst::SLoad { .. } | Inst::SStore { .. })
    }
}

/// A logged memory access (what the controller sees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Store (true) or load (false).
    pub write: bool,
    /// Issued under stride mode (`sload`/`sstore`).
    pub strided: bool,
}

/// An assembled program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction (builder style).
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// The instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Binary machine code.
    pub fn assemble(&self) -> Vec<u32> {
        self.insts.iter().map(|i| i.encode()).collect()
    }

    /// Disassembles machine code back into a program.
    ///
    /// # Errors
    ///
    /// Returns the offending word on an unknown opcode.
    pub fn disassemble(words: &[u32]) -> Result<Self, u32> {
        let insts = words
            .iter()
            .map(|&w| Inst::decode(w))
            .collect::<Result<_, _>>()?;
        Ok(Self { insts })
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// A `Halt` executed.
    Halted,
    /// The step budget ran out (runaway loop guard).
    OutOfFuel,
    /// The program counter ran off the end.
    FellThrough,
}

/// A tiny interpreter over sparse 64-bit-word memory.
#[derive(Debug, Clone, Default)]
pub struct Interpreter {
    regs: [u64; NUM_REGS],
    memory: BTreeMap<u64, u64>,
    log: Vec<Access>,
}

impl Interpreter {
    /// Fresh machine: zero registers, empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-loads a 64-bit word at byte address `addr` (8B aligned).
    ///
    /// # Panics
    ///
    /// Panics on unaligned addresses.
    pub fn poke(&mut self, addr: u64, value: u64) {
        assert_eq!(addr % 8, 0, "memory is 8B-word addressed");
        self.memory.insert(addr, value);
    }

    /// Reads memory (zero if never written).
    pub fn peek(&self, addr: u64) -> u64 {
        *self.memory.get(&addr).unwrap_or(&0)
    }

    /// Register value.
    pub fn reg(&self, r: u8) -> u64 {
        self.regs[r as usize]
    }

    /// Sets a register (x0 writes are ignored).
    pub fn set_reg(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// The memory-access log in program order.
    pub fn log(&self) -> &[Access] {
        &self.log
    }

    /// Runs `program` for at most `fuel` steps.
    pub fn run(&mut self, program: &Program, fuel: usize) -> Stop {
        let mut pc = 0usize;
        for _ in 0..fuel {
            let Some(&inst) = program.insts().get(pc) else {
                return Stop::FellThrough;
            };
            pc += 1;
            match inst {
                Inst::Li { rd, imm } => self.set_reg(rd, imm as u64),
                Inst::Add { rd, rs1, rs2 } => {
                    self.set_reg(rd, self.reg(rs1).wrapping_add(self.reg(rs2)));
                }
                Inst::Addi { rd, rs1, imm } => {
                    self.set_reg(rd, self.reg(rs1).wrapping_add_signed(imm as i64));
                }
                Inst::Load { rd, rs1, imm } | Inst::SLoad { rd, rs1, imm } => {
                    let addr = self.reg(rs1).wrapping_add_signed(imm as i64);
                    self.log.push(Access {
                        addr,
                        write: false,
                        strided: inst.is_strided(),
                    });
                    let v = self.peek(addr & !7);
                    self.set_reg(rd, v);
                }
                Inst::Store { rs2, rs1, imm } | Inst::SStore { rs2, rs1, imm } => {
                    let addr = self.reg(rs1).wrapping_add_signed(imm as i64);
                    self.log.push(Access {
                        addr,
                        write: true,
                        strided: inst.is_strided(),
                    });
                    let v = self.reg(rs2);
                    self.memory.insert(addr & !7, v);
                }
                Inst::Loop { rd, offset } => {
                    let v = self.reg(rd).wrapping_sub(1);
                    self.set_reg(rd, v);
                    if v != 0 {
                        pc = pc.saturating_sub(offset as usize + 1);
                    }
                }
                Inst::Halt => return Stop::Halted,
            }
        }
        Stop::OutOfFuel
    }
}

/// Builds the canonical field-scan kernel: sum `field` of `records`
/// consecutive records of `record_bytes` each, starting at `base`, using
/// `sload` when `strided` (the Figure 1 workload as machine code).
///
/// Register map: x1 = pointer, x2 = counter, x3 = accumulator, x4 = scratch,
/// x5 = record stride.
pub fn field_scan_kernel(
    base: u64,
    record_bytes: u16,
    field_offset: i16,
    records: u16,
    strided: bool,
) -> (Program, Interpreter) {
    let mut p = Program::new();
    let mut m = Interpreter::new();
    // The 16-bit immediates cannot hold a big base, so preload it via a
    // register poke (a loader would use a full `lui` chain; out of scope).
    m.set_reg(1, base);
    p.push(Inst::Li {
        rd: 2,
        imm: records,
    });
    p.push(Inst::Li { rd: 3, imm: 0 });
    p.push(Inst::Li {
        rd: 5,
        imm: record_bytes,
    });
    // loop:
    if strided {
        p.push(Inst::SLoad {
            rd: 4,
            rs1: 1,
            imm: field_offset,
        });
    } else {
        p.push(Inst::Load {
            rd: 4,
            rs1: 1,
            imm: field_offset,
        });
    }
    p.push(Inst::Add {
        rd: 3,
        rs1: 3,
        rs2: 4,
    });
    p.push(Inst::Add {
        rd: 1,
        rs1: 1,
        rs2: 5,
    });
    p.push(Inst::Loop { rd: 2, offset: 3 });
    p.push(Inst::Halt);
    (p, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_every_shape() {
        let insts = [
            Inst::Li { rd: 3, imm: 0xBEEF },
            Inst::Add {
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Inst::Addi {
                rd: 4,
                rs1: 5,
                imm: -9,
            },
            Inst::Load {
                rd: 6,
                rs1: 7,
                imm: 72,
            },
            Inst::Store {
                rs2: 8,
                rs1: 9,
                imm: -72,
            },
            Inst::SLoad {
                rd: 10,
                rs1: 11,
                imm: 80,
            },
            Inst::SStore {
                rs2: 12,
                rs1: 13,
                imm: 8,
            },
            Inst::Loop { rd: 2, offset: 3 },
            Inst::Halt,
        ];
        for inst in insts {
            assert_eq!(Inst::decode(inst.encode()), Ok(inst), "{inst:?}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(Inst::decode(63 << 26), Err(63 << 26));
    }

    #[test]
    fn program_assembles_and_disassembles() {
        let (p, _) = field_scan_kernel(0, 1024, 80, 10, true);
        let words = p.assemble();
        assert_eq!(Program::disassemble(&words).unwrap(), p);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut m = Interpreter::new();
        let mut p = Program::new();
        p.push(Inst::Li { rd: 0, imm: 5 }).push(Inst::Halt);
        assert_eq!(m.run(&p, 10), Stop::Halted);
        assert_eq!(m.reg(0), 0);
    }

    #[test]
    fn field_scan_computes_the_sum_scalar_and_strided() {
        // 16 records of 1KB; field at +80 holds the record index * 3.
        let base = 0x10_0000u64;
        for strided in [false, true] {
            let (p, mut m) = field_scan_kernel(base, 1024, 80, 16, strided);
            for r in 0..16u64 {
                m.poke(base + r * 1024 + 80, r * 3);
            }
            assert_eq!(m.run(&p, 1000), Stop::Halted);
            let expected: u64 = (0..16u64).map(|r| r * 3).sum();
            assert_eq!(m.reg(3), expected, "strided={strided}");
            // The access log carries the stride attribute to the controller.
            let loads: Vec<&Access> = m.log().iter().filter(|a| !a.write).collect();
            assert_eq!(loads.len(), 16);
            assert!(loads.iter().all(|a| a.strided == strided));
            // Fixed-stride pattern, as Figure 1 depicts.
            for (i, a) in loads.iter().enumerate() {
                assert_eq!(a.addr, base + i as u64 * 1024 + 80);
            }
        }
    }

    #[test]
    fn sstore_logs_strided_writes() {
        let mut p = Program::new();
        p.push(Inst::Li { rd: 2, imm: 7 });
        p.push(Inst::SStore {
            rs2: 2,
            rs1: 0,
            imm: 16,
        });
        p.push(Inst::Halt);
        let mut m = Interpreter::new();
        assert_eq!(m.run(&p, 10), Stop::Halted);
        assert_eq!(m.peek(16), 7);
        assert_eq!(
            m.log(),
            &[Access {
                addr: 16,
                write: true,
                strided: true
            }]
        );
    }

    #[test]
    fn runaway_loops_run_out_of_fuel() {
        let mut p = Program::new();
        p.push(Inst::Li { rd: 1, imm: 0 }); // wraps: effectively infinite
        p.push(Inst::Loop { rd: 1, offset: 0 });
        let mut m = Interpreter::new();
        assert_eq!(m.run(&p, 100), Stop::OutOfFuel);
    }

    #[test]
    fn fall_through_detected() {
        let mut p = Program::new();
        p.push(Inst::Li { rd: 1, imm: 1 });
        let mut m = Interpreter::new();
        assert_eq!(m.run(&p, 10), Stop::FellThrough);
    }
}

//! The qualitative comparison of Table 1, as machine-checkable properties.
//!
//! Each design reports a [`Rating`] per dimension; the `table1` harness
//! binary prints the paper's matrix and the tests here pin the entries the
//! paper calls out explicitly.

use crate::design::{Design, EccScheme};

/// Table 1's three-level rating: good/unmodified, fair/slightly modified,
/// poor/modified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rating {
    /// `x` in the paper: poor / heavily modified.
    Poor,
    /// `o` in the paper: fair / slightly modified.
    Fair,
    /// A check mark in the paper: good / unmodified.
    Good,
}

impl std::fmt::Display for Rating {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rating::Good => write!(f, "v"),
            Rating::Fair => write!(f, "o"),
            Rating::Poor => write!(f, "x"),
        }
    }
}

/// The full Table 1 row-set for one design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Properties {
    /// Needs database alignment support (all designs do).
    pub database_alignment: bool,
    /// Needs an ISA extension (all designs do).
    pub isa_extension: bool,
    /// Needs a sector (or MDA) cache (all designs do).
    pub sector_cache: bool,
    /// Memory-controller modification burden.
    pub memory_controller: Rating,
    /// Command-interface modification burden.
    pub command_interface: Rating,
    /// Critical-word-first preserved.
    pub critical_word_first: Rating,
    /// Strided-access performance.
    pub performance: Rating,
    /// Power consumption.
    pub power: Rating,
    /// Area overhead.
    pub area: Rating,
    /// Reliability (chipkill compatibility).
    pub reliability: Rating,
    /// Mode-switch delay burden.
    pub mode_switch: Rating,
}

/// Derives the Table 1 properties of `design` from its structural fields.
pub fn properties(design: &Design) -> Properties {
    let name = design.name;
    let is_gs = name.starts_with("GS-DRAM");
    let is_rc = name.starts_with("RC-NVM");
    Properties {
        database_alignment: true,
        isa_extension: true,
        sector_cache: true,
        memory_controller: if is_gs { Rating::Poor } else { Rating::Good },
        command_interface: if is_gs { Rating::Poor } else { Rating::Good },
        critical_word_first: if design.critical_word_first {
            Rating::Good
        } else {
            Rating::Poor
        },
        performance: match name {
            "SAM-IO" | "SAM-en" | "GS-DRAM" | "GS-DRAM-ecc" => Rating::Good,
            "SAM-sub" => Rating::Fair,
            _ if is_rc => Rating::Poor,
            _ => Rating::Good,
        },
        // Over-fetch (SAM-IO) and RRAM's heavy writes both rate "fair".
        power: if design.power.stride_overfetch > 1.0 || is_rc {
            Rating::Fair
        } else {
            Rating::Good
        },
        area: if design.area_overhead >= 0.10 {
            Rating::Poor
        } else if design.area_overhead >= 0.01 {
            Rating::Fair
        } else {
            Rating::Good
        },
        reliability: match design.ecc {
            EccScheme::Chipkill => Rating::Good,
            EccScheme::Embedded => Rating::Fair,
            EccScheme::Unprotected => Rating::Poor,
        },
        mode_switch: match design.stride {
            Some(caps) if caps.needs_mode_switch => Rating::Fair,
            _ => Rating::Good,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::*;

    #[test]
    fn sam_en_wins_most_dimensions() {
        let p = properties(&sam_en());
        assert_eq!(p.performance, Rating::Good);
        assert_eq!(p.power, Rating::Good);
        assert_eq!(p.area, Rating::Good);
        assert_eq!(p.reliability, Rating::Good);
        assert_eq!(p.critical_word_first, Rating::Good);
        // The one dimension GS-DRAM beats SAM-en on (Section 5.4.2).
        assert_eq!(p.mode_switch, Rating::Fair);
        assert_eq!(properties(&gs_dram()).mode_switch, Rating::Good);
    }

    #[test]
    fn gs_dram_sacrifices_reliability_and_interface() {
        let p = properties(&gs_dram());
        assert_eq!(p.reliability, Rating::Poor);
        assert_eq!(p.memory_controller, Rating::Poor);
        assert_eq!(p.command_interface, Rating::Poor);
        assert_eq!(p.performance, Rating::Good);
    }

    #[test]
    fn rc_nvm_lags_performance_and_area() {
        let p = properties(&rc_nvm_wd());
        assert_eq!(p.performance, Rating::Poor);
        assert_eq!(p.area, Rating::Poor);
        assert_eq!(p.reliability, Rating::Good);
    }

    #[test]
    fn sam_io_trades_power_and_cwf() {
        let p = properties(&sam_io());
        assert_eq!(p.power, Rating::Fair);
        assert_eq!(p.critical_word_first, Rating::Poor);
        assert_eq!(p.area, Rating::Good);
        assert_eq!(p.reliability, Rating::Good);
    }

    #[test]
    fn sam_sub_area_is_fair() {
        let p = properties(&sam_sub());
        assert_eq!(p.area, Rating::Fair);
        assert_eq!(p.performance, Rating::Fair);
    }

    #[test]
    fn every_design_needs_system_support() {
        for d in all_designs() {
            let p = properties(&d);
            assert!(
                p.database_alignment && p.isa_extension && p.sector_cache,
                "{}",
                d.name
            );
        }
    }

    #[test]
    fn rating_display_symbols() {
        assert_eq!(Rating::Good.to_string(), "v");
        assert_eq!(Rating::Fair.to_string(), "o");
        assert_eq!(Rating::Poor.to_string(), "x");
    }
}

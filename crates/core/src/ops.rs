//! Design-independent access traces.
//!
//! The IMDB engine compiles a query into one trace per core. A trace names
//! *what* is touched — records, fields, reads or writes, interleaved CPU
//! work — and the [`crate::system::System`] decides *how* under a given
//! design (regular line fills vs. stride bursts, layout addresses, ECC
//! traffic).

/// One step of a core's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Touch the named fields of one record of `table`.
    Fields {
        /// Index into the run's table list.
        table: u8,
        /// Record index.
        record: u64,
        /// Field indices touched (deduplicated to 16B sectors internally).
        fields: Vec<u16>,
        /// Store (true) or load (false).
        write: bool,
    },
    /// Touch every field of one record (SELECT * / INSERT).
    Whole {
        /// Index into the run's table list.
        table: u8,
        /// Record index.
        record: u64,
        /// Store (true) or load (false).
        write: bool,
    },
    /// Pure CPU work, in CPU cycles (predicate evaluation, aggregation,
    /// loop overhead).
    Compute(u32),
}

impl TraceOp {
    /// A read of `fields` of `record` in table 0.
    pub fn read_fields(record: u64, fields: Vec<u16>) -> Self {
        TraceOp::Fields {
            table: 0,
            record,
            fields,
            write: false,
        }
    }

    /// A write of `fields` of `record` in table 0.
    pub fn write_fields(record: u64, fields: Vec<u16>) -> Self {
        TraceOp::Fields {
            table: 0,
            record,
            fields,
            write: true,
        }
    }

    /// A whole-record read in table 0.
    pub fn read_whole(record: u64) -> Self {
        TraceOp::Whole {
            table: 0,
            record,
            write: false,
        }
    }

    /// A whole-record write in table 0.
    pub fn write_whole(record: u64) -> Self {
        TraceOp::Whole {
            table: 0,
            record,
            write: true,
        }
    }

    /// CPU work.
    pub fn compute(cycles: u32) -> Self {
        TraceOp::Compute(cycles)
    }

    /// The table this op touches, if it touches one.
    pub fn table(&self) -> Option<u8> {
        match self {
            TraceOp::Fields { table, .. } | TraceOp::Whole { table, .. } => Some(*table),
            TraceOp::Compute(_) => None,
        }
    }
}

/// A per-core sequence of operations.
pub type Trace = Vec<TraceOp>;

/// Splits a set of record indices into contiguous chunks across `cores`
/// traces using `make_ops` to produce each record's ops (helper for plan
/// builders). Chunking — not round-robin — matches how parallel scans
/// partition ranges, and keeps each core the issuer of its own gather
/// groups' stride fills.
pub fn partition_records<F>(
    records: impl Iterator<Item = u64>,
    cores: usize,
    mut make_ops: F,
) -> Vec<Trace>
where
    F: FnMut(u64, &mut Trace),
{
    assert!(cores > 0, "need at least one core");
    let all: Vec<u64> = records.collect();
    let mut traces = vec![Trace::new(); cores];
    let chunk = all.len().div_ceil(cores).max(1);
    for (i, r) in all.into_iter().enumerate() {
        make_ops(r, &mut traces[(i / chunk).min(cores - 1)]);
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(
            TraceOp::read_fields(5, vec![1, 2]),
            TraceOp::Fields {
                table: 0,
                record: 5,
                fields: vec![1, 2],
                write: false
            }
        );
        assert_eq!(TraceOp::write_whole(9).table(), Some(0));
        assert_eq!(TraceOp::compute(3).table(), None);
    }

    #[test]
    fn partition_chunks_contiguously() {
        let traces = partition_records(0..10, 4, |r, t| t.push(TraceOp::read_whole(r)));
        assert_eq!(traces.len(), 4);
        assert_eq!(traces[0].len(), 3); // records 0, 1, 2
        assert_eq!(traces[1].len(), 3); // records 3, 4, 5
        assert_eq!(traces[2].len(), 3); // records 6, 7, 8
        assert_eq!(traces[3].len(), 1); // record 9
        assert_eq!(traces[1][0], TraceOp::read_whole(3));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn partition_zero_cores_panics() {
        partition_records(0..1, 0, |_, _| {});
    }
}

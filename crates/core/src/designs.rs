//! Constructors for the eight hardware designs of the evaluation
//! (Figure 12): commodity DRAM (the row-store baseline and, with a
//! column-store table, the "ideal" reference), the three SAM designs, the
//! two GS-DRAM variants, and the two RC-NVM variants.
//!
//! Area and storage overheads follow Section 6.1 and Figure 14(c); they are
//! re-derived independently by `sam-area` and cross-checked in tests there.

use crate::design::{AlignmentPolicy, Design, EccScheme, PowerTraits, StrideCaps};
use sam_dram::timing::Substrate;
use sam_ecc::layout::CodewordLayout;

/// Commodity DDR4 with chipkill: the paper's baseline (row-store) and, with
/// a column-store table layout, its "ideal" reference.
pub fn commodity() -> Design {
    Design {
        name: "commodity",
        substrate: Substrate::Dram,
        area_overhead: 0.0,
        storage_overhead: 0.0,
        stride: None,
        sub_ranked: false,
        alignment: AlignmentPolicy::Linear,
        ecc: EccScheme::Chipkill,
        codeword_layout: CodewordLayout::BeatSpread,
        critical_word_first: true,
        power: PowerTraits::commodity(),
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// Sub-ranked memory (DGMS-style, the Section 1 related work): the rank is
/// split into four 16B sub-ranks and sparse accesses fetch from just one,
/// letting four independent accesses share the channel. Effective for
/// random accesses — but strided data share a word offset and therefore a
/// sub-rank, so strided scans serialize on one sub-lane (the paper's
/// motivating observation).
pub fn dgms() -> Design {
    Design {
        name: "DGMS",
        substrate: Substrate::Dram,
        area_overhead: 0.028, // per-sub-rank control/CS routing (AGMS paper)
        storage_overhead: 0.0,
        stride: None,
        sub_ranked: true,
        alignment: AlignmentPolicy::Linear,
        ecc: EccScheme::Chipkill,
        codeword_layout: CodewordLayout::BeatSpread,
        critical_word_first: true,
        power: PowerTraits::commodity(),
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// SAM-sub (Section 4.1): column-wise subarrays gather strided data through
/// the helper flip-flops. ~7.2% area (extra global BLs, control lines,
/// global SAs); records align vertically across rows of a bank.
pub fn sam_sub() -> Design {
    Design {
        name: "SAM-sub",
        substrate: Substrate::Dram,
        area_overhead: 0.072,
        storage_overhead: 0.0,
        stride: Some(StrideCaps {
            needs_mode_switch: true,
            extra_burst_period: 0,
            field_switch_cost: true,
        }),
        sub_ranked: false,
        // Alignment regions stack deep inside one bank (records align with
        // the rows of that bank's subarrays), so row-wise scans lose
        // bank-level parallelism (Section 5.4.1).
        alignment: AlignmentPolicy::VerticalRows { depth: 2048 },
        ecc: EccScheme::Chipkill,
        codeword_layout: CodewordLayout::BeatSpread,
        critical_word_first: true,
        power: PowerTraits {
            stride_overfetch: 1.0,
            background_extra: 0.02, // extra decoding and SA logic
            fine_grained_activation: false,
        },
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// SAM-IO (Section 4.2): the common-die I/O buffers gather four sub-rows of
/// one row; near-zero area (<0.01%: the 7-bit mode register), but internal
/// over-fetch (4x) and a transposed codeword layout that loses
/// critical-word-first.
pub fn sam_io() -> Design {
    Design {
        name: "SAM-IO",
        substrate: Substrate::Dram,
        area_overhead: 0.0001,
        storage_overhead: 0.0,
        stride: Some(StrideCaps {
            needs_mode_switch: true,
            extra_burst_period: 0,
            field_switch_cost: false,
        }),
        sub_ranked: false,
        alignment: AlignmentPolicy::Linear,
        ecc: EccScheme::Chipkill,
        codeword_layout: CodewordLayout::Transposed,
        critical_word_first: false,
        power: PowerTraits {
            stride_overfetch: 4.0, // fetches 288B to send 72B (Section 4.2.2)
            background_extra: 0.0,
            fine_grained_activation: false,
        },
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// SAM-en (Section 4.3): SAM-IO plus fine-grained activation (option 1) and
/// the two-dimensional I/O buffer (option 2). ~0.7% area (control lines),
/// default codeword layout restored, no over-fetch.
pub fn sam_en() -> Design {
    Design {
        name: "SAM-en",
        substrate: Substrate::Dram,
        area_overhead: 0.007,
        storage_overhead: 0.0,
        stride: Some(StrideCaps {
            needs_mode_switch: true,
            extra_burst_period: 0,
            field_switch_cost: false,
        }),
        sub_ranked: false,
        alignment: AlignmentPolicy::Linear,
        ecc: EccScheme::Chipkill,
        codeword_layout: CodewordLayout::BeatSpread,
        critical_word_first: true,
        power: PowerTraits {
            stride_overfetch: 1.0,
            background_extra: 0.0,
            fine_grained_activation: true,
        },
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// A SAM-en ablation with only option 2 (the 2D I/O buffer) and not option 1
/// (fine-grained activation): layout benefits without the power savings.
pub fn sam_en_no_fga() -> Design {
    let mut d = sam_en();
    d.name = "SAM-en(-fga)";
    d.power.fine_grained_activation = false;
    d.power.stride_overfetch = 4.0;
    d
}

/// A SAM-en ablation with only option 1 (fine-grained activation) and not
/// option 2: power savings but SAM-IO's transposed layout.
pub fn sam_en_no_2d() -> Design {
    let mut d = sam_en();
    d.name = "SAM-en(-2d)";
    d.codeword_layout = CodewordLayout::Transposed;
    d.critical_word_first = false;
    d
}

/// GS-DRAM (Section 3.3.1): gather-scatter across chips via a widened
/// command interface. No mode-switch cost, small area — but the strided
/// gather cannot co-fetch ECC, so chipkill is lost.
pub fn gs_dram() -> Design {
    Design {
        name: "GS-DRAM",
        substrate: Substrate::Dram,
        area_overhead: 0.005,
        storage_overhead: 0.0,
        stride: Some(StrideCaps {
            needs_mode_switch: false,
            extra_burst_period: 0,
            field_switch_cost: false,
        }),
        sub_ranked: false,
        alignment: AlignmentPolicy::Linear,
        ecc: EccScheme::Unprotected,
        codeword_layout: CodewordLayout::GatherNoEcc,
        critical_word_first: false,
        power: PowerTraits::commodity(),
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// GS-DRAM enhanced with embedded ECC (per \[55\]) to restore protection:
/// ECC words live in-page and cost extra bursts — especially for strided
/// accesses whose gathered lines come from different rows, and for writes,
/// which become read-modify-writes on the ECC words (Section 3.3.1 counts
/// up to five ECC updates per write transfer).
pub fn gs_dram_ecc() -> Design {
    Design {
        name: "GS-DRAM-ecc",
        substrate: Substrate::Dram,
        area_overhead: 0.005,
        storage_overhead: 0.125, // 8 ECC bits per 64 data bits, in-page
        stride: Some(StrideCaps {
            needs_mode_switch: false,
            extra_burst_period: 0,
            field_switch_cost: false,
        }),
        sub_ranked: false,
        alignment: AlignmentPolicy::Linear,
        ecc: EccScheme::Embedded,
        codeword_layout: CodewordLayout::BeatSpread,
        critical_word_first: false,
        power: PowerTraits::commodity(),
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// RC-NVM without the reshaped (2D) subarray: the crossbar symmetry is
/// exploited at bit level, so one strided word is collected from several
/// bit-level sub-fields (multiple column operations per burst).
pub fn rc_nvm_bit() -> Design {
    Design {
        name: "RC-NVM-bit",
        substrate: Substrate::Rram,
        area_overhead: 0.15,
        storage_overhead: 0.0,
        stride: Some(StrideCaps {
            needs_mode_switch: false,
            extra_burst_period: 2,
            field_switch_cost: true,
        }),
        sub_ranked: false,
        // RC-NVM's alignment spans the reshaped 2K-row subarray (Section
        // 3.3.2), confining large stretches of the table to one bank.
        alignment: AlignmentPolicy::VerticalRows { depth: 2048 },
        ecc: EccScheme::Chipkill,
        codeword_layout: CodewordLayout::BeatSpread,
        critical_word_first: true,
        power: PowerTraits::commodity(),
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// RC-NVM with the reshaped square subarray (word-level symmetry): single
/// column operation per strided burst, at ~33% area overhead.
pub fn rc_nvm_wd() -> Design {
    Design {
        name: "RC-NVM-wd",
        substrate: Substrate::Rram,
        area_overhead: 0.33,
        storage_overhead: 0.0,
        stride: Some(StrideCaps {
            needs_mode_switch: false,
            extra_burst_period: 0,
            field_switch_cost: true,
        }),
        sub_ranked: false,
        // Same 2K-row reshaped-subarray alignment as RC-NVM-bit.
        alignment: AlignmentPolicy::VerticalRows { depth: 2048 },
        ecc: EccScheme::Chipkill,
        codeword_layout: CodewordLayout::BeatSpread,
        critical_word_first: true,
        power: PowerTraits::commodity(),
        starvation_cap: None,
        drain_hi: None,
        drain_lo: None,
    }
}

/// All eight evaluated hardware designs, in Figure 12's legend order
/// (the baseline and ideal are `commodity()` with row/best table stores).
pub fn all_designs() -> Vec<Design> {
    vec![
        rc_nvm_bit(),
        rc_nvm_wd(),
        gs_dram(),
        gs_dram_ecc(),
        sam_sub(),
        sam_io(),
        sam_en(),
        commodity(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam_dram::timing::TimingParams;

    #[test]
    fn all_designs_distinct_names() {
        let designs = all_designs();
        let mut names: Vec<&str> = designs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), designs.len());
    }

    #[test]
    fn area_overheads_match_section_6_1() {
        assert!((sam_sub().area_overhead - 0.072).abs() < 1e-9);
        assert!(sam_io().area_overhead < 0.001);
        assert!((sam_en().area_overhead - 0.007).abs() < 1e-9);
        assert!((rc_nvm_wd().area_overhead - 0.33).abs() < 1e-9);
    }

    #[test]
    fn sam_sub_timing_inflated_by_area() {
        let cfg = sam_sub().device_config();
        let base = TimingParams::ddr4_2400();
        assert!(cfg.timing.rcd > base.rcd);
        let io_cfg = sam_io().device_config();
        assert_eq!(io_cfg.timing.rcd, base.rcd, "SAM-IO adds no array latency");
    }

    #[test]
    fn rc_nvm_runs_on_rram() {
        assert_eq!(rc_nvm_wd().substrate, Substrate::Rram);
        assert_eq!(
            rc_nvm_wd().device_config().timing.rcd,
            (35.0 * 1.33f64).round() as u64
        );
    }

    #[test]
    fn substrate_swap_for_figure_14a() {
        let d = rc_nvm_wd().with_substrate(Substrate::Dram);
        assert_eq!(d.substrate, Substrate::Dram);
        assert_eq!(d.device_config().timing.substrate, Substrate::Dram);
    }

    #[test]
    fn only_gs_dram_lacks_protection() {
        for d in all_designs() {
            if d.name == "GS-DRAM" {
                assert_eq!(d.ecc, crate::design::EccScheme::Unprotected);
                assert!(!d.codeword_layout.codewords_complete());
            } else {
                assert!(d.codeword_layout.codewords_complete(), "{}", d.name);
            }
        }
    }

    #[test]
    fn sam_designs_need_mode_switch_gs_dram_does_not() {
        assert!(sam_io().stride.unwrap().needs_mode_switch);
        assert!(sam_en().stride.unwrap().needs_mode_switch);
        assert!(!gs_dram().stride.unwrap().needs_mode_switch);
    }

    #[test]
    fn ablations_toggle_single_options() {
        assert!(!sam_en_no_fga().power.fine_grained_activation);
        assert!(sam_en_no_fga().critical_word_first);
        assert!(sam_en_no_2d().power.fine_grained_activation);
        assert!(!sam_en_no_2d().critical_word_first);
    }
}

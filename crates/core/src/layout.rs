//! Table placement in physical memory, per design (Section 5.4.1).
//!
//! Three placements occur in the evaluation:
//!
//! * **Plain row store** (the baseline): record `r`'s field `f` lives at
//!   `base + r*record_bytes + f*8`. Scanning one field touches one line per
//!   record — the strided pattern of Figure 1.
//! * **Plain column store** (the Q-query "ideal"): field `f`'s values are
//!   contiguous, so scans are sequential.
//! * **Grouped row store** (all stride-capable designs, Figure 11(a)): the
//!   database aligns every `K` records (K = the gather factor) so that one
//!   stride burst returns the same field unit of all K group-mates. Within a
//!   group, line `b*K + r` holds units `[b*K, (b+1)*K)` of record `r`; the K
//!   units a burst gathers then sit in K *consecutive* cachelines.
//!
//! Two address spaces must be distinguished. The **cache address** uniquely
//! names a datum and is what the hierarchy is indexed by. The **DRAM
//! address** determines bank/row locality at the device. For SAM-IO/SAM-en
//! and GS-DRAM the two coincide (gathering happens inside a row). SAM-sub
//! and RC-NVM instead align records vertically across the rows of one bank:
//! their *regular* accesses see the vertical placement (sequential scans
//! lose bank-level parallelism — the Qs-query penalty), while their
//! *stride* accesses ride the orthogonal column-wise path with the same
//! locality as the row-wise gathers (the symmetric data path), except that
//! different field blocks occupy different rows of the same bank — so
//! interleaved multi-field scans pay the column-to-column field-switch
//! penalty as row ping-pong.

use crate::design::{AlignmentPolicy, Design, Granularity};

/// Bytes per field (the benchmark tables use 8B fields throughout).
pub const FIELD_BYTES: u64 = 8;

/// A table's geometry and base address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableSpec {
    /// Base physical address (must be row-aligned for sensible locality).
    pub base: u64,
    /// Number of 8B fields per record.
    pub fields: u32,
    /// Number of records.
    pub records: u64,
}

impl TableSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `fields == 0` or `records == 0`.
    pub fn new(base: u64, fields: u32, records: u64) -> Self {
        assert!(
            fields > 0 && records > 0,
            "table must have fields and records"
        );
        Self {
            base,
            fields,
            records,
        }
    }

    /// The paper's wide table Ta: 128 fields (1KB records).
    pub fn ta(base: u64, records: u64) -> Self {
        Self::new(base, 128, records)
    }

    /// The paper's narrow table Tb: 16 fields (128B records).
    pub fn tb(base: u64, records: u64) -> Self {
        Self::new(base, 16, records)
    }

    /// Bytes per record.
    pub fn record_bytes(&self) -> u64 {
        self.fields as u64 * FIELD_BYTES
    }

    /// Total bytes of table data.
    pub fn data_bytes(&self) -> u64 {
        self.record_bytes() * self.records
    }
}

/// Row-store or column-store table organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Store {
    /// Records contiguous (OLTP-friendly). The paper's baseline.
    #[default]
    Row,
    /// Fields contiguous (OLAP-friendly). The Q-query ideal.
    Column,
}

impl std::fmt::Display for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Store::Row => write!(f, "row-store"),
            Store::Column => write!(f, "column-store"),
        }
    }
}

/// A stride burst to issue and the cache sectors it fills.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrideFill {
    /// DRAM-schedule address of the burst (first gathered byte).
    pub burst_addr: u64,
    /// Cache-visible 16B-sector addresses the burst fills.
    pub sector_addrs: Vec<u64>,
    /// I/O-buffer lane the units travel on (selects the `Sx4_n` mode).
    pub lane: u8,
}

/// Resolves (record, field) coordinates to cache and DRAM addresses under a
/// given design, store, and granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    spec: TableSpec,
    store: Store,
    /// Gather factor K when the design supports stride (grouped layout).
    gather: Option<u64>,
    unit_bytes: u64,
    vertical: Option<u32>,
    /// Whether field-block switches cost a column-to-column row ping-pong.
    field_switch: bool,
}

impl Placement {
    /// Builds the placement a `design` uses for `spec` under `store`.
    pub fn new(spec: TableSpec, store: Store, design: &Design, gran: Granularity) -> Self {
        // Stride alignment only pays when records span at least a full
        // cacheline; smaller records fit in one line already, and padding
        // them to group alignment would waste 64B per record — a database
        // would simply not align such a table (Section 5.4.1).
        let grouped = design.supports_stride() && store == Store::Row && spec.record_bytes() >= 64;
        let vertical = match design.alignment {
            AlignmentPolicy::VerticalRows { depth } => Some(depth),
            AlignmentPolicy::Linear => None,
        };
        Self {
            spec,
            store,
            gather: grouped.then_some(gran.gather() as u64),
            unit_bytes: gran.unit_bytes(),
            vertical,
            field_switch: design.stride.is_some_and(|c| c.field_switch_cost),
        }
    }

    /// The table spec.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Cache-visible byte address of `field` of `record`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the table geometry.
    pub fn field_addr(&self, record: u64, field: u32) -> u64 {
        assert!(record < self.spec.records, "record {record} out of range");
        assert!(field < self.spec.fields, "field {field} out of range");
        let rb = self.spec.record_bytes();
        match (self.store, self.gather) {
            (Store::Column, _) => {
                // Field f's column, padded to line alignment.
                let col_stride = (self.spec.records * FIELD_BYTES).next_multiple_of(64);
                self.spec.base + field as u64 * col_stride + record * FIELD_BYTES
            }
            (Store::Row, None) => self.spec.base + record * rb + field as u64 * FIELD_BYTES,
            (Store::Row, Some(k)) => {
                // Grouped layout: within group g, line b*K + r holds units
                // [b*K, (b+1)*K) of record r — 64B of one record per line,
                // so records pad up to full cachelines (the Figure 11
                // alignment requirement).
                let rb = rb.next_multiple_of(64);
                let g = record / k;
                let r = record % k;
                let byte = field as u64 * FIELD_BYTES;
                let u = byte / self.unit_bytes;
                let b = u / k;
                let within_line = (u % k) * self.unit_bytes + byte % self.unit_bytes;
                self.spec.base + g * k * rb + (b * k + r) * 64 + within_line
            }
        }
    }

    /// DRAM-schedule address for a *regular* access to the cacheline holding
    /// `cache_addr` when only the line address is known (writebacks):
    /// identical for linear designs; vertically-aligned designs stack
    /// consecutive 8KB blocks into one bank.
    pub fn dram_addr_regular(&self, cache_addr: u64) -> u64 {
        match self.vertical {
            None => cache_addr,
            Some(depth) => {
                let rel = cache_addr.saturating_sub(self.spec.base);
                self.spec.base + vertical_stack(rel, depth as u64)
            }
        }
    }

    /// DRAM-schedule address for a regular access to (`record`, `field`).
    ///
    /// Linear designs: identical to the cache address. Vertically aligned
    /// designs (SAM-sub, RC-NVM; Section 5.4.1): record `r` of a gather
    /// group lives in DRAM row `r mod K` of the group's row set, so
    /// *consecutive records occupy different rows of the same bank* — the
    /// row-conflict source behind the paper's Qs-query degradation. Groups
    /// pack side by side within the row set until the rows fill, then the
    /// next row set begins (in the same bank, up to the stacking depth).
    pub fn dram_addr_for(&self, record: u64, field: u32) -> u64 {
        let Some(depth) = self.vertical else {
            return self.field_addr(record, field);
        };
        const ROW_BYTES: u64 = 8192;
        let rb = self.spec.record_bytes();
        let k = self.gather.unwrap_or(8);
        let within = field as u64 * FIELD_BYTES;
        if rb > ROW_BYTES {
            // Oversized records degenerate to block stacking.
            return self.dram_addr_regular(self.field_addr(record, field));
        }
        let lanes = ROW_BYTES / rb; // records per row
                                    // Row-batch factor: the controller's FR-FCFS window batches the
                                    // row-wise traffic of small records, effectively serving several
                                    // consecutive records per row visit before the vertical alignment
                                    // forces a row switch. One switch per ~16 cachelines of scan.
        let batch = (1024 / rb).clamp(1, lanes);
        let rowset = record / (k * lanes);
        let within_set = record % (k * lanes);
        let q = within_set / batch;
        let rec_row = q % k;
        let lane = (q / k) * batch + within_set % batch;
        let row_index = rowset * k + rec_row;
        let linear = row_index * ROW_BYTES + lane * rb + within;
        self.spec.base + vertical_stack(linear, depth as u64)
    }

    /// The stride burst that fills the 16B sector(s) containing
    /// (`record`, `field`) — `None` when the design/store cannot stride.
    pub fn stride_fill(&self, record: u64, field: u32) -> Option<StrideFill> {
        let k = self.gather?;
        assert!(record < self.spec.records, "record {record} out of range");
        assert!(field < self.spec.fields, "field {field} out of range");
        // Line-padded record size, matching `field_addr`'s grouped layout.
        let rb = self.spec.record_bytes().next_multiple_of(64);
        let g = record / k;
        let byte = field as u64 * FIELD_BYTES;
        let u = byte / self.unit_bytes;
        let b = u / k;
        let unit_off = (u % k) * self.unit_bytes;

        // Cache sectors: the same unit offset in each of the K group lines.
        let group_base = self.spec.base + g * k * rb;
        let first_line = group_base + b * k * 64;
        let sector_off = unit_off & !15;
        let sectors_per_unit = (self.unit_bytes / 16).max(1);
        let mut sector_addrs = Vec::with_capacity((k * sectors_per_unit) as usize);
        for r in 0..k {
            // Clip at table end: the last partial group gathers dead lines.
            if g * k + r >= self.spec.records {
                break;
            }
            let line = first_line + r * 64;
            for s in 0..sectors_per_unit {
                sector_addrs.push(line + sector_off + s * 16);
            }
        }

        // DRAM address: linear designs gather inside the row (the burst's
        // own lines); vertical designs use the orthogonal column space where
        // one field-block's bursts are sequential and a field switch jumps.
        // Stride bursts ride the gathered lines themselves: along a scan of
        // one field, the column-wise access of SAM-sub/RC-NVM enjoys the
        // same buffer locality as the row-wise gathers of SAM-IO/SAM-en
        // (the paper's symmetric-data-path claim). But switching to a
        // *different field block* re-drives the orthogonal selection: for
        // the field-switch designs each block's column structures occupy a
        // different row of the *same* bank (an 8MB offset keeps the bank
        // fixed under the controller's XOR permutation), so interleaved
        // multi-field scans ping-pong rows — the paper's column-to-column
        // switch penalty.
        let burst_addr = if self.field_switch {
            const BLOCK_REGION: u64 = 8 * 1024 * 1024;
            first_line + sector_off + 512 * 1024 * 1024 + b * BLOCK_REGION
        } else {
            first_line + sector_off
        };

        let lane = ((u % k) % 4) as u8;
        Some(StrideFill {
            burst_addr,
            sector_addrs,
            lane,
        })
    }

    /// Gather factor, if striding is available.
    pub fn gather(&self) -> Option<u64> {
        self.gather
    }
}

/// Restacks consecutive 8KB blocks vertically: `depth` blocks fill
/// consecutive rows of one *physical* bank before placement moves to the
/// next of the 32 banks (16 banks x 2 ranks). Inverse of the controller's
/// bank-interleaved default, and deliberately hostile to sequential scans.
/// The emitted bank field pre-compensates the controller's XOR bank
/// permutation so the physical bank really is fixed across the stacked rows.
fn vertical_stack(addr: u64, depth: u64) -> u64 {
    const ROW_BYTES: u64 = 8192;
    const BANKS: u64 = 32;
    let block = addr / ROW_BYTES;
    let within = addr % ROW_BYTES;
    let region = block / (BANKS * depth);
    let in_region = block % (BANKS * depth);
    let bank = in_region / depth;
    let row_slot = in_region % depth;
    let row = region * depth + row_slot;
    let bank_field = sam_memctrl::mapping::bank_swizzle(bank, row, 5);
    let new_block = row * BANKS + bank_field;
    new_block * ROW_BYTES + within
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{commodity, rc_nvm_wd, sam_en, sam_sub};

    fn ta() -> TableSpec {
        TableSpec::ta(0, 1024)
    }

    #[test]
    fn spec_geometry() {
        let t = ta();
        assert_eq!(t.record_bytes(), 1024);
        assert_eq!(t.data_bytes(), 1024 * 1024);
        assert_eq!(TableSpec::tb(0, 10).record_bytes(), 128);
    }

    #[test]
    fn plain_row_store_addresses() {
        let p = Placement::new(ta(), Store::Row, &commodity(), Granularity::Bits4);
        assert_eq!(p.field_addr(0, 0), 0);
        assert_eq!(p.field_addr(0, 3), 24);
        assert_eq!(p.field_addr(2, 0), 2048);
        assert!(p.stride_fill(0, 0).is_none(), "commodity cannot stride");
    }

    #[test]
    fn column_store_addresses() {
        let p = Placement::new(ta(), Store::Column, &commodity(), Granularity::Bits4);
        // Column stride: 1024 records x 8B = 8192.
        assert_eq!(p.field_addr(0, 1) - p.field_addr(0, 0), 8192);
        assert_eq!(p.field_addr(5, 0) - p.field_addr(4, 0), 8);
    }

    #[test]
    fn grouped_layout_keeps_units_in_consecutive_lines() {
        let p = Placement::new(ta(), Store::Row, &sam_en(), Granularity::Bits4);
        let fill = p.stride_fill(0, 5).unwrap();
        // K=8 at 4-bit granularity: 8 sectors in 8 consecutive lines.
        assert_eq!(fill.sector_addrs.len(), 8);
        for w in fill.sector_addrs.windows(2) {
            assert_eq!(w[1] - w[0], 64);
        }
        // Every group-mate's field 5 address lies in the fill set's sectors.
        for r in 0..8u64 {
            let a = p.field_addr(r, 5);
            let sector = a & !15;
            assert!(
                fill.sector_addrs.contains(&sector),
                "record {r} addr {a:#x}"
            );
        }
    }

    #[test]
    fn grouped_layout_is_a_bijection() {
        // No two (record, field) pairs may collide in the grouped layout.
        let spec = TableSpec::new(0, 16, 64);
        let p = Placement::new(spec, Store::Row, &sam_en(), Granularity::Bits4);
        let mut seen = std::collections::HashSet::new();
        for r in 0..64 {
            for f in 0..16 {
                assert!(seen.insert(p.field_addr(r, f)), "collision at ({r},{f})");
            }
        }
        // And stays inside the table's data span.
        let max = seen.iter().max().unwrap() + FIELD_BYTES;
        assert!(max <= spec.data_bytes());
    }

    #[test]
    fn whole_record_stays_within_one_group_span() {
        // Under the grouped layout a record's lines are scattered with
        // stride K*64 but confined to its group (so they share DRAM rows).
        let p = Placement::new(ta(), Store::Row, &sam_en(), Granularity::Bits4);
        let k = 8;
        let rb = 1024;
        for f in (0..128).step_by(2) {
            let a = p.field_addr(3, f);
            assert!(a < k * rb, "field {f} at {a:#x} escapes the group span");
        }
    }

    #[test]
    fn bits8_granularity_gathers_four() {
        let p = Placement::new(ta(), Store::Row, &sam_en(), Granularity::Bits8);
        let fill = p.stride_fill(0, 2).unwrap();
        assert_eq!(fill.sector_addrs.len(), 4);
        // A 16B unit covers two adjacent fields: 2 and 3 share a fill.
        let f3 = p.field_addr(0, 3);
        assert!(fill.sector_addrs.contains(&(f3 & !15)));
    }

    #[test]
    fn bits16_granularity_fills_two_sectors_per_line() {
        let p = Placement::new(ta(), Store::Row, &sam_en(), Granularity::Bits16);
        let fill = p.stride_fill(0, 0).unwrap();
        // K=2 lines x 2 sectors per 32B unit.
        assert_eq!(fill.sector_addrs.len(), 4);
    }

    #[test]
    fn partial_last_group_clips() {
        let spec = TableSpec::new(0, 16, 10); // 10 records, K=8: last group has 2
        let p = Placement::new(spec, Store::Row, &sam_en(), Granularity::Bits4);
        let fill = p.stride_fill(9, 0).unwrap();
        assert_eq!(fill.sector_addrs.len(), 2);
    }

    #[test]
    fn linear_designs_burst_addr_is_first_line() {
        let p = Placement::new(ta(), Store::Row, &sam_en(), Granularity::Bits4);
        let fill = p.stride_fill(0, 0).unwrap();
        assert_eq!(fill.burst_addr, fill.sector_addrs[0]);
        assert_eq!(p.dram_addr_regular(12345), 12345, "linear: identity");
    }

    #[test]
    fn vertical_designs_stride_like_linear_but_scan_vertically() {
        // Stride bursts pace like the linear designs along one field's scan
        // (symmetric data path): consecutive groups advance identically...
        let p = Placement::new(ta(), Store::Row, &sam_sub(), Granularity::Bits4);
        let pe = Placement::new(ta(), Store::Row, &sam_en(), Granularity::Bits4);
        let d_sub =
            p.stride_fill(8, 5).unwrap().burst_addr - p.stride_fill(0, 5).unwrap().burst_addr;
        let d_en =
            pe.stride_fill(8, 5).unwrap().burst_addr - pe.stride_fill(0, 5).unwrap().burst_addr;
        assert_eq!(d_sub, d_en);
        // ...but different field blocks land in different rows of the SAME
        // bank (the column-to-column switch penalty): 8MB apart keeps the
        // bank fixed under the XOR permutation.
        let b0 = p.stride_fill(0, 0).unwrap().burst_addr;
        let b1 = p.stride_fill(0, 8).unwrap().burst_addr;
        // One block region (8MB) plus the next block's line offset (512B).
        assert_eq!(b1 - b0, 8 * 1024 * 1024 + 512);
        // ...while regular accesses see the vertical alignment.
        assert_ne!(p.dram_addr_for(9, 0), pe.dram_addr_for(9, 0));
    }

    #[test]
    fn vertical_stack_keeps_blocks_in_one_physical_bank() {
        // Blocks 0..depth map to the same physical bank (the bank field is
        // pre-compensated for the controller's XOR permutation: physical
        // bank = field ^ row).
        let depth = 8;
        for b in 0..depth {
            let a = vertical_stack(b * 8192, depth);
            let field = (a / 8192) % 32;
            let row = (a / 8192) / 32;
            assert_eq!(field ^ row, 0, "block {b} physical bank");
            assert_eq!(row, b);
        }
        // Block `depth` moves to physical bank 1, row 0.
        let a = vertical_stack(depth * 8192, depth);
        assert_eq!(((a / 8192) % 32) ^ ((a / 8192) / 32), 1);
        assert_eq!((a / 8192) / 32, 0);
    }

    #[test]
    fn vertical_stack_is_a_bijection_on_blocks() {
        let depth = 8;
        let mut seen = std::collections::HashSet::new();
        for b in 0..1024u64 {
            let a = vertical_stack(b * 8192, depth);
            assert_eq!(a % 8192, 0);
            assert!(seen.insert(a), "block {b} collides");
        }
    }

    #[test]
    fn rc_nvm_uses_vertical_alignment() {
        let p = Placement::new(ta(), Store::Row, &rc_nvm_wd(), Granularity::Bits4);
        assert_ne!(p.dram_addr_regular(8192), 8192);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn field_addr_bounds_checked() {
        let p = Placement::new(ta(), Store::Row, &commodity(), Granularity::Bits4);
        p.field_addr(0, 128);
    }
}

//! OS support for stride mode (Section 5.2, Figure 10).
//!
//! An OS page normally maps onto one or two DRAM row segments to maximize
//! row-buffer hits. SAM reshapes rows under stride mode, so a page that is
//! accessed stridedly needs a different virtual-to-physical mapping: a
//! small segment of the page offset (2 bits at 8-bit-per-chip granularity,
//! 3 bits at 4-bit) is swapped with the bits just above it — implementable
//! via huge pages or a kernel module, per the paper.
//!
//! [`AddressSpace`] is that kernel module in miniature: a page table with
//! 4KB base pages and 2MB huge pages, a bump frame allocator, and a
//! per-page *stride attribute*. Translation applies the Figure 10 swap for
//! stride-mode pages, and tests verify the properties the paper needs:
//! translation is a bijection within each page, the 16B-unit offset is
//! preserved, and toggling the attribute only permutes data *within* the
//! page (so flipping a table between modes never leaks across pages).

use crate::design::Granularity;
use sam_memctrl::mapping::stride_page_remap;
use std::collections::HashMap; // sam-analyze: allow(determinism, "page table is keyed-lookup only; never iterated")

/// Base page size (4KB, Figure 10's page offset).
pub const PAGE_BYTES: u64 = 4096;
/// Huge page size (2MB) for the paper's huge-page implementation path.
pub const HUGE_PAGE_BYTES: u64 = 2 * 1024 * 1024;

/// Errors from address-space operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsError {
    /// Translation attempted on an unmapped virtual page.
    NotMapped {
        /// The faulting virtual address.
        vaddr: u64,
    },
    /// The mapping would overlap an existing one.
    AlreadyMapped,
    /// Virtual address or length not page-aligned.
    Misaligned,
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::NotMapped { vaddr } => write!(f, "page fault at {vaddr:#x}"),
            OsError::AlreadyMapped => write!(f, "mapping overlaps an existing one"),
            OsError::Misaligned => write!(f, "address or length not page-aligned"),
        }
    }
}

impl std::error::Error for OsError {}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    frame_base: u64,
    huge: bool,
    stride_mode: bool,
}

/// A process address space with stride-mode page attributes.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    granularity: Granularity,
    /// 4KB-granular page table: vpn -> entry (huge pages occupy 512 slots'
    /// worth but are stored once per 4KB vpn for O(1) lookup).
    // sam-analyze: allow(determinism, "page table is keyed-lookup only; never iterated")
    pages: HashMap<u64, PageEntry>,
    next_frame: u64,
}

impl AddressSpace {
    /// Creates an empty address space; physical frames are handed out from
    /// `phys_base` upward.
    pub fn new(phys_base: u64, granularity: Granularity) -> Self {
        assert_eq!(
            phys_base % HUGE_PAGE_BYTES,
            0,
            "physical base must be huge-page aligned"
        );
        Self {
            granularity,
            // sam-analyze: allow(determinism, "page table is keyed-lookup only; never iterated")
            pages: HashMap::new(),
            next_frame: phys_base,
        }
    }

    /// Maps `len` bytes at `vaddr` with fresh physical frames.
    /// `huge` uses 2MB pages (rounding `len` up); `stride_mode` tags every
    /// page with the Figure 10 remap attribute.
    ///
    /// # Errors
    ///
    /// [`OsError::Misaligned`] for unaligned `vaddr`/`len`;
    /// [`OsError::AlreadyMapped`] on overlap (nothing is mapped then).
    pub fn mmap(
        &mut self,
        vaddr: u64,
        len: u64,
        huge: bool,
        stride_mode: bool,
    ) -> Result<(), OsError> {
        let page = if huge { HUGE_PAGE_BYTES } else { PAGE_BYTES };
        if !vaddr.is_multiple_of(page) || len == 0 {
            return Err(OsError::Misaligned);
        }
        let len = len.next_multiple_of(page);
        // Overlap check first so failure has no side effects.
        for off in (0..len).step_by(PAGE_BYTES as usize) {
            if self.pages.contains_key(&((vaddr + off) / PAGE_BYTES)) {
                return Err(OsError::AlreadyMapped);
            }
        }
        for big_off in (0..len).step_by(page as usize) {
            let frame = self.next_frame;
            self.next_frame += page;
            for small in (0..page).step_by(PAGE_BYTES as usize) {
                self.pages.insert(
                    (vaddr + big_off + small) / PAGE_BYTES,
                    PageEntry {
                        frame_base: frame + small,
                        huge,
                        stride_mode,
                    },
                );
            }
        }
        Ok(())
    }

    /// Changes the stride attribute of the pages covering `[vaddr, +len)`
    /// (the `madvise`-style switch an IMDB issues before a strided phase).
    ///
    /// # Errors
    ///
    /// [`OsError::NotMapped`] if any page in the range is unmapped.
    pub fn set_stride_mode(&mut self, vaddr: u64, len: u64, enabled: bool) -> Result<(), OsError> {
        for off in (0..len.next_multiple_of(PAGE_BYTES)).step_by(PAGE_BYTES as usize) {
            let vpn = (vaddr + off) / PAGE_BYTES;
            if !self.pages.contains_key(&vpn) {
                return Err(OsError::NotMapped { vaddr: vaddr + off });
            }
        }
        for off in (0..len.next_multiple_of(PAGE_BYTES)).step_by(PAGE_BYTES as usize) {
            let vpn = (vaddr + off) / PAGE_BYTES;
            self.pages.get_mut(&vpn).expect("checked above").stride_mode = enabled;
        }
        Ok(())
    }

    /// Translates a virtual address, applying the Figure 10 swap for
    /// stride-mode pages.
    ///
    /// # Errors
    ///
    /// [`OsError::NotMapped`] on a page fault.
    pub fn translate(&self, vaddr: u64) -> Result<u64, OsError> {
        let entry = self
            .pages
            .get(&(vaddr / PAGE_BYTES))
            .ok_or(OsError::NotMapped { vaddr })?;
        let offset = vaddr % PAGE_BYTES;
        let paddr = entry.frame_base + offset;
        if entry.stride_mode {
            Ok(stride_page_remap(
                paddr,
                self.granularity.remap_segment_bits(),
            ))
        } else {
            Ok(paddr)
        }
    }

    /// Whether the page containing `vaddr` is huge-page backed.
    pub fn is_huge_page(&self, vaddr: u64) -> bool {
        self.pages
            .get(&(vaddr / PAGE_BYTES))
            .is_some_and(|e| e.huge)
    }

    /// Whether the page containing `vaddr` is in stride mode.
    pub fn is_stride_page(&self, vaddr: u64) -> bool {
        self.pages
            .get(&(vaddr / PAGE_BYTES))
            .is_some_and(|e| e.stride_mode)
    }

    /// Number of mapped 4KB slots.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn space() -> AddressSpace {
        AddressSpace::new(0x1000_0000, Granularity::Bits4)
    }

    #[test]
    fn mmap_and_translate_identity_pages() {
        let mut a = space();
        a.mmap(0x4000, 2 * PAGE_BYTES, false, false).unwrap();
        let p0 = a.translate(0x4000).unwrap();
        let p1 = a.translate(0x4000 + PAGE_BYTES).unwrap();
        assert_eq!(p0 % PAGE_BYTES, 0);
        assert_ne!(p0, p1);
        assert_eq!(a.translate(0x4123).unwrap(), p0 + 0x123);
    }

    #[test]
    fn page_fault_on_unmapped() {
        let a = space();
        assert_eq!(
            a.translate(0x9000),
            Err(OsError::NotMapped { vaddr: 0x9000 })
        );
    }

    #[test]
    fn overlap_rejected_atomically() {
        let mut a = space();
        a.mmap(0x4000, PAGE_BYTES, false, false).unwrap();
        let before = a.mapped_pages();
        assert_eq!(
            a.mmap(0x3000, 3 * PAGE_BYTES, false, false),
            Err(OsError::AlreadyMapped)
        );
        assert_eq!(
            a.mapped_pages(),
            before,
            "failed mmap must not leave partial mappings"
        );
    }

    #[test]
    fn misaligned_mmap_rejected() {
        let mut a = space();
        assert_eq!(
            a.mmap(0x4100, PAGE_BYTES, false, false),
            Err(OsError::Misaligned)
        );
        assert_eq!(a.mmap(0x0000, 0, false, false), Err(OsError::Misaligned));
    }

    #[test]
    fn huge_pages_are_contiguous() {
        let mut a = space();
        a.mmap(0, HUGE_PAGE_BYTES, true, false).unwrap();
        assert!(a.is_huge_page(0));
        assert!(a.is_huge_page(HUGE_PAGE_BYTES - 1));
        let base = a.translate(0).unwrap();
        for off in (0..HUGE_PAGE_BYTES).step_by(PAGE_BYTES as usize * 64) {
            assert_eq!(
                a.translate(off).unwrap(),
                base + off,
                "huge page is physically contiguous"
            );
        }
    }

    #[test]
    fn stride_pages_permute_within_the_page() {
        // The Figure 10 swap must be a bijection on the page and keep the
        // 16B offset intact.
        let mut a = space();
        a.mmap(0, PAGE_BYTES, false, true).unwrap();
        let mut seen = HashSet::new();
        let frame = a.translate(0).unwrap() & !(PAGE_BYTES - 1);
        for off in 0..PAGE_BYTES {
            let p = a.translate(off).unwrap();
            assert_eq!(p & !(PAGE_BYTES - 1), frame, "stays in its frame");
            assert_eq!(p % 16, off % 16, "16B strided-unit offset preserved");
            assert!(seen.insert(p), "bijective");
        }
        assert_eq!(seen.len(), PAGE_BYTES as usize);
    }

    #[test]
    fn toggling_stride_mode_is_reversible() {
        let mut a = space();
        a.mmap(0x8000, PAGE_BYTES, false, false).unwrap();
        let plain = a.translate(0x8050).unwrap();
        a.set_stride_mode(0x8000, PAGE_BYTES, true).unwrap();
        assert!(a.is_stride_page(0x8000));
        let strided = a.translate(0x8050).unwrap();
        a.set_stride_mode(0x8000, PAGE_BYTES, false).unwrap();
        assert_eq!(a.translate(0x8050).unwrap(), plain);
        // 0x50 = 0b0101_0000: swapped segments differ, so the stride view
        // really moved this unit.
        assert_ne!(plain, strided);
    }

    #[test]
    fn set_stride_mode_faults_on_holes() {
        let mut a = space();
        a.mmap(0, PAGE_BYTES, false, false).unwrap();
        assert!(matches!(
            a.set_stride_mode(0, 2 * PAGE_BYTES, true),
            Err(OsError::NotMapped { .. })
        ));
    }

    #[test]
    fn granularity_selects_segment_width() {
        // 8-bit granularity swaps 2-bit segments; 4-bit swaps 3-bit ones —
        // so the two views of the same offset differ.
        let mut a8 = AddressSpace::new(0x1000_0000, Granularity::Bits8);
        let mut a4 = AddressSpace::new(0x1000_0000, Granularity::Bits4);
        a8.mmap(0, PAGE_BYTES, false, true).unwrap();
        a4.mmap(0, PAGE_BYTES, false, true).unwrap();
        // Offset with bits in the 3-bit-but-not-2-bit segment region.
        let off = 0b111_0000u64 << 3; // exercises bit 9 (only in 3-bit swap)
        assert_ne!(a8.translate(off).unwrap(), a4.translate(off).unwrap());
    }
}

//! Property-based tests of the sector cache against a reference model: a
//! plain map of line -> sector state with unbounded capacity. The cache may
//! evict (capacity), but it must never *invent* contents: every hit the
//! cache reports must be a line/sector the reference has seen filled.

use proptest::prelude::*;
use std::collections::HashMap;

use sam_cache::hierarchy::{AccessKind, Hierarchy, HierarchyConfig};
use sam_cache::sector::{split_sector, SectorState};
use sam_cache::set_assoc::{Probe, SetAssocCache};

#[derive(Debug, Clone)]
enum Op {
    FillLine(u64),
    FillSector(u64),
    Read(u64),
    Write(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Confine addresses to a small window so hits actually happen.
    let addr = 0u64..8192;
    prop_oneof![
        addr.clone().prop_map(|a| Op::FillLine(a & !63)),
        addr.clone().prop_map(|a| Op::FillSector(a & !15)),
        addr.clone().prop_map(Op::Read),
        addr.prop_map(Op::Write),
    ]
}

proptest! {
    #[test]
    fn cache_never_invents_data(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        let mut reference: HashMap<u64, [bool; 4]> = HashMap::new();
        for op in ops {
            match op {
                Op::FillLine(line) => {
                    h.fill_line(line);
                    reference.insert(line, [true; 4]);
                }
                Op::FillSector(addr) => {
                    h.fill_sector(addr);
                    let (line, s) = split_sector(addr);
                    reference.entry(line).or_insert([false; 4])[s] = true;
                }
                Op::Read(addr) | Op::Write(addr) => {
                    let kind = if matches!(op, Op::Write(_)) { AccessKind::Write } else { AccessKind::Read };
                    let r = h.access(addr, kind);
                    if !r.memory_fill_needed() {
                        let (line, s) = split_sector(addr);
                        let filled = reference.get(&line).is_some_and(|m| m[s]);
                        prop_assert!(filled, "hit on never-filled sector {addr:#x}");
                    }
                }
            }
        }
    }

    #[test]
    fn writebacks_only_for_written_sectors(
        writes in proptest::collection::vec(0u64..4096, 1..100),
        reads in proptest::collection::vec(0u64..4096, 1..100),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        let mut written: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for &a in &writes {
            let sector = a & !15;
            if h.access(sector, AccessKind::Write).memory_fill_needed() {
                h.fill_line(sector & !63);
                h.access(sector, AccessKind::Write);
            }
            h.mark_dirty(sector);
            written.insert(sector);
        }
        for &a in &reads {
            if h.access(a, AccessKind::Read).memory_fill_needed() {
                h.fill_line(a & !63);
            }
        }
        for wb in h.flush_dirty() {
            for s in wb.sectors.dirty_sectors() {
                let sector = wb.line_addr + 16 * s as u64;
                prop_assert!(written.contains(&sector),
                    "writeback of never-written sector {sector:#x}");
            }
        }
    }

    #[test]
    fn set_assoc_lru_keeps_most_recent_within_ways(
        touches in proptest::collection::vec(0u64..16, 2..64),
    ) {
        // With a single set of 4 ways, the most recently touched line is
        // always present.
        let mut c = SetAssocCache::new(256, 4); // 1 set x 4 ways
        let mut last = None;
        for &t in &touches {
            let line = t * 64; // all lines map to the single set
            c.fill(line, SectorState::full());
            last = Some(line);
        }
        if let Some(line) = last {
            prop_assert_eq!(c.peek(line, 0), Probe::Hit);
        }
    }
}

//! Cache hierarchy with sector-cache support for the SAM reproduction.
//!
//! Section 5.1.1: strided data returned by SAM is a 16B piece of each of
//! several cachelines, so the paper adopts a *sector cache* — each 64B line
//! is split into four 16B sectors with their own valid and dirty bits (6 bits
//! of overhead per line). A stride fill populates one sector in each of the
//! gathered lines; a regular fill populates all four.
//!
//! * [`set_assoc`] — the LRU set-associative core used at every level.
//! * [`sector`] — per-line sector valid/dirty state.
//! * [`hierarchy`] — the three-level hierarchy of Table 2 (L1 32KB,
//!   L2 256KB, LLC 8MB, all 8-way, 64B lines), with sector fills at every
//!   level and writeback propagation.
//!
//! # Example
//!
//! ```
//! use sam_cache::hierarchy::{Hierarchy, HierarchyConfig, AccessKind};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::table2());
//! // Cold miss goes to memory...
//! let r = h.access(0x1000, AccessKind::Read);
//! assert!(r.memory_fill_needed());
//! h.fill_line(0x1000);
//! // ...then the line hits.
//! let r2 = h.access(0x1000, AccessKind::Read);
//! assert!(!r2.memory_fill_needed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod sector;
pub mod set_assoc;

/// Bytes per cacheline throughout the system (Table 2).
pub const LINE_BYTES: u64 = 64;
/// Bytes per sector (one chipkill codeword of data — Section 5.1.1).
pub const SECTOR_BYTES: u64 = 16;
/// Sectors per line.
pub const SECTORS_PER_LINE: usize = (LINE_BYTES / SECTOR_BYTES) as usize;

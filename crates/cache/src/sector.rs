//! Per-line sector state: four 16B sectors with valid and dirty bits.

use crate::SECTORS_PER_LINE;

/// Valid/dirty bookkeeping for the four 16B sectors of one line
/// (the "6 bits per 64B" overhead of Section 5.1.1: 4 valid + shared
/// dirty tracking; we keep per-sector dirty bits, the upper bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SectorState {
    valid: u8,
    dirty: u8,
}

impl SectorState {
    /// All sectors invalid and clean.
    pub fn empty() -> Self {
        Self::default()
    }

    /// All sectors valid (a full-line fill), clean.
    pub fn full() -> Self {
        Self {
            valid: (1 << SECTORS_PER_LINE) - 1,
            dirty: 0,
        }
    }

    /// A single valid sector (a stride fill), clean.
    ///
    /// # Panics
    ///
    /// Panics if `sector >= 4`.
    pub fn single(sector: usize) -> Self {
        assert!(sector < SECTORS_PER_LINE, "sector {sector} out of range");
        Self {
            valid: 1 << sector,
            dirty: 0,
        }
    }

    /// Is `sector` valid?
    pub fn is_valid(&self, sector: usize) -> bool {
        assert!(sector < SECTORS_PER_LINE, "sector {sector} out of range");
        (self.valid >> sector) & 1 == 1
    }

    /// Is `sector` dirty?
    pub fn is_dirty(&self, sector: usize) -> bool {
        assert!(sector < SECTORS_PER_LINE, "sector {sector} out of range");
        (self.dirty >> sector) & 1 == 1
    }

    /// Is any sector dirty?
    pub fn any_dirty(&self) -> bool {
        self.dirty != 0
    }

    /// Are all sectors valid?
    pub fn all_valid(&self) -> bool {
        self.valid == (1 << SECTORS_PER_LINE) - 1
    }

    /// Number of valid sectors.
    pub fn valid_count(&self) -> usize {
        self.valid.count_ones() as usize
    }

    /// Marks `sector` valid (after a fill).
    pub fn fill(&mut self, sector: usize) {
        assert!(sector < SECTORS_PER_LINE, "sector {sector} out of range");
        self.valid |= 1 << sector;
    }

    /// Marks the whole line valid (after a full fill).
    pub fn fill_all(&mut self) {
        self.valid = (1 << SECTORS_PER_LINE) - 1;
    }

    /// Marks `sector` dirty (it must be valid).
    ///
    /// # Panics
    ///
    /// Panics if the sector is not valid — writing an invalid sector is a
    /// cache-controller bug.
    pub fn mark_dirty(&mut self, sector: usize) {
        assert!(self.is_valid(sector), "writing invalid sector {sector}");
        self.dirty |= 1 << sector;
    }

    /// Returns the dirty sector indices (what a writeback must flush).
    pub fn dirty_sectors(&self) -> Vec<usize> {
        (0..SECTORS_PER_LINE)
            .filter(|&s| self.is_dirty(s))
            .collect()
    }

    /// Merges another state's valid and dirty bits into this one (used when
    /// a victim's data moves down one cache level).
    pub fn merge(&mut self, other: SectorState) {
        self.valid |= other.valid;
        self.dirty |= other.dirty;
    }

    /// Returns a copy with all dirty bits cleared (after a writeback).
    pub fn cleaned(mut self) -> Self {
        self.dirty = 0;
        self
    }
}

/// Splits a byte address into (line address, sector index).
pub fn split_sector(addr: u64) -> (u64, usize) {
    let line = addr & !(crate::LINE_BYTES - 1);
    let sector = ((addr & (crate::LINE_BYTES - 1)) / crate::SECTOR_BYTES) as usize;
    (line, sector)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_single() {
        assert_eq!(SectorState::empty().valid_count(), 0);
        assert!(SectorState::full().all_valid());
        let s = SectorState::single(2);
        assert!(s.is_valid(2));
        assert!(!s.is_valid(0));
        assert_eq!(s.valid_count(), 1);
    }

    #[test]
    fn fill_and_dirty_tracking() {
        let mut s = SectorState::empty();
        s.fill(1);
        s.mark_dirty(1);
        assert!(s.any_dirty());
        assert_eq!(s.dirty_sectors(), vec![1]);
        s.fill_all();
        assert!(s.all_valid());
        assert_eq!(s.dirty_sectors(), vec![1], "fill does not clear dirty");
    }

    #[test]
    #[should_panic(expected = "writing invalid sector")]
    fn dirty_invalid_sector_panics() {
        SectorState::empty().mark_dirty(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sector_bounds_checked() {
        SectorState::single(4);
    }

    #[test]
    fn split_sector_math() {
        assert_eq!(split_sector(0), (0, 0));
        assert_eq!(split_sector(16), (0, 1));
        assert_eq!(split_sector(63), (0, 3));
        assert_eq!(split_sector(64), (64, 0));
        // 0x1234: line 0x1200, byte 0x34 within the line -> sector 3.
        assert_eq!(split_sector(0x1234), (0x1200, 3));
    }
}

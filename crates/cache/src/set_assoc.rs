//! LRU set-associative cache core with per-line sector state.

use crate::sector::SectorState;
use crate::LINE_BYTES;

/// A victim evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Victim {
    /// Line address of the evicted line.
    pub line_addr: u64,
    /// Sector state at eviction (dirty sectors must be written back).
    pub sectors: SectorState,
    /// Core that installed the line (see [`SetAssocCache::fill_owned`]);
    /// rides along so an eventual writeback can be attributed.
    pub owner: u8,
}

impl Victim {
    /// Whether this victim requires a writeback.
    pub fn needs_writeback(&self) -> bool {
        self.sectors.any_dirty()
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    sectors: SectorState,
    /// Monotonic LRU stamp; larger = more recent.
    stamp: u64,
    valid: bool,
    /// Core that installed the line (merging fills keep the installer).
    owner: u8,
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found the line with the sector valid.
    pub hits: u64,
    /// Accesses where the line was present but the sector invalid
    /// (sector misses — unique to sector caches).
    pub sector_misses: u64,
    /// Accesses where the line was absent.
    pub line_misses: u64,
    /// Evictions that required a writeback.
    pub writebacks: u64,
}

impl CacheStats {
    /// All accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.sector_misses + self.line_misses
    }

    /// Hit rate, if any accesses happened.
    pub fn hit_rate(&self) -> Option<f64> {
        let n = self.accesses();
        (n > 0).then(|| self.hits as f64 / n as f64)
    }
}

/// Result of probing a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Probe {
    /// Line present, requested sector valid.
    Hit,
    /// Line present, requested sector invalid.
    SectorMiss,
    /// Line absent.
    LineMiss,
}

/// A read-only snapshot of one resident cache line, as enumerated by
/// [`SetAssocCache::lines`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineView {
    /// Set index the line resides in.
    pub set: usize,
    /// Way index within the set.
    pub way: usize,
    /// Reconstructed byte address of the line.
    pub line_addr: u64,
    /// Stored tag.
    pub tag: u64,
    /// Per-sector valid/dirty state.
    pub sectors: SectorState,
    /// Core that installed the line.
    pub owner: u8,
}

/// One level of set-associative, write-back, write-allocate sector cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    data: Vec<Way>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not an exact power-of-two set count.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let lines = capacity_bytes / LINE_BYTES;
        assert!(
            lines.is_multiple_of(ways as u64),
            "capacity must divide into ways"
        );
        let sets = (lines / ways as u64) as usize;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Self {
            sets,
            ways,
            data: vec![
                Way {
                    tag: 0,
                    sectors: SectorState::empty(),
                    stamp: 0,
                    valid: false,
                    owner: 0
                };
                sets * ways
            ],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index(&self, line_addr: u64) -> (usize, u64) {
        let line = line_addr / LINE_BYTES;
        let set = (line as usize) & (self.sets - 1);
        let tag = line >> self.sets.trailing_zeros();
        (set, tag)
    }

    fn ways_of(&mut self, set: usize) -> &mut [Way] {
        &mut self.data[set * self.ways..(set + 1) * self.ways]
    }

    /// Probes (and on a hit, touches LRU + optional dirty) the sector at
    /// `line_addr`/`sector`. `write` marks the sector dirty on hit.
    pub fn access(&mut self, line_addr: u64, sector: usize, write: bool) -> Probe {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(line_addr);
        for way in self.ways_of(set) {
            if way.valid && way.tag == tag {
                if way.sectors.is_valid(sector) {
                    way.stamp = tick;
                    if write {
                        way.sectors.mark_dirty(sector);
                    }
                    self.stats.hits += 1;
                    return Probe::Hit;
                }
                self.stats.sector_misses += 1;
                return Probe::SectorMiss;
            }
        }
        self.stats.line_misses += 1;
        Probe::LineMiss
    }

    /// Read-only probe without statistics or LRU side effects.
    pub fn peek(&self, line_addr: u64, sector: usize) -> Probe {
        let (set, tag) = self.index(line_addr);
        for way in &self.data[set * self.ways..(set + 1) * self.ways] {
            if way.valid && way.tag == tag {
                return if way.sectors.is_valid(sector) {
                    Probe::Hit
                } else {
                    Probe::SectorMiss
                };
            }
        }
        Probe::LineMiss
    }

    /// Fills sectors into the line (allocating it if absent), returning an
    /// evicted victim if allocation displaced a valid line. `sectors` is the
    /// post-fill valid mask contribution: [`SectorState::full`] for a
    /// regular fill, [`SectorState::single`] for a stride fill.
    ///
    /// Attribution-neutral form of [`Self::fill_owned`]: the line is owned
    /// by core 0 (the single-stream default).
    pub fn fill(&mut self, line_addr: u64, fill: SectorState) -> Option<Victim> {
        self.fill_owned(line_addr, fill, 0)
    }

    /// [`Self::fill`], recording `owner` as the installing core. Merging
    /// into a resident line keeps the original installer — ownership is a
    /// per-line attribute, not per-sector — so victims (and thus eventual
    /// writebacks) are attributed to whichever core allocated the line.
    pub fn fill_owned(&mut self, line_addr: u64, fill: SectorState, owner: u8) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(line_addr);
        let sets_bits = self.sets.trailing_zeros();
        let set_u64 = set as u64;
        // Already present: merge valid and dirty bits.
        for way in self.ways_of(set) {
            if way.valid && way.tag == tag {
                way.sectors.merge(fill);
                way.stamp = tick;
                return None;
            }
        }
        // Allocate: pick an invalid way or the LRU way.
        let ways = self.ways_of(set);
        let victim_idx = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.stamp + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("ways is non-empty");
        let old = ways[victim_idx];
        ways[victim_idx] = Way {
            tag,
            sectors: fill,
            stamp: tick,
            valid: true,
            owner,
        };
        if old.valid {
            let victim = Victim {
                line_addr: ((old.tag << sets_bits) | set_u64) * LINE_BYTES,
                sectors: old.sectors,
                owner: old.owner,
            };
            if victim.needs_writeback() {
                self.stats.writebacks += 1;
            }
            Some(victim)
        } else {
            None
        }
    }

    /// Owner of the line containing `line_addr`, if resident. Read-only;
    /// used by the hierarchy to preserve attribution across promotions.
    pub fn owner_of(&self, line_addr: u64) -> Option<u8> {
        let (set, tag) = self.index(line_addr);
        self.data[set * self.ways..(set + 1) * self.ways]
            .iter()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| w.owner)
    }

    /// Marks `sector` of `line_addr` dirty without touching statistics or
    /// LRU order (used to complete a write-allocate after its fill arrives).
    /// Returns `false` if the line or sector is not present/valid.
    pub fn mark_dirty(&mut self, line_addr: u64, sector: usize) -> bool {
        let (set, tag) = self.index(line_addr);
        for way in self.ways_of(set) {
            if way.valid && way.tag == tag && way.sectors.is_valid(sector) {
                way.sectors.mark_dirty(sector);
                return true;
            }
        }
        false
    }

    /// Emits a [`Victim`] for every dirty line and clears their dirty bits
    /// (lines stay valid). Used to flush residual write traffic at the end
    /// of a workload.
    pub fn drain_dirty(&mut self) -> Vec<Victim> {
        let sets_bits = self.sets.trailing_zeros();
        let ways = self.ways;
        let mut out = Vec::new();
        for (i, way) in self.data.iter_mut().enumerate() {
            if way.valid && way.sectors.any_dirty() {
                let set = (i / ways) as u64;
                out.push(Victim {
                    line_addr: ((way.tag << sets_bits) | set) * LINE_BYTES,
                    sectors: way.sectors,
                    owner: way.owner,
                });
                way.sectors = way.sectors.cleaned();
                self.stats.writebacks += 1;
            }
        }
        out
    }

    /// Enumerates the valid lines currently resident, for external invariant
    /// checking (see the `sam-check` crate). Read-only; no LRU side effects.
    pub fn lines(&self) -> impl Iterator<Item = LineView> + '_ {
        let sets_bits = self.sets.trailing_zeros();
        let ways = self.ways;
        self.data
            .iter()
            .enumerate()
            .filter(|(_, w)| w.valid)
            .map(move |(i, w)| {
                let set = i / ways;
                LineView {
                    set,
                    way: i % ways,
                    line_addr: ((w.tag << sets_bits) | set as u64) * LINE_BYTES,
                    tag: w.tag,
                    sectors: w.sectors,
                    owner: w.owner,
                }
            })
    }

    /// Invalidates a line if present, returning its state (for inclusive-
    /// hierarchy back-invalidation).
    pub fn invalidate(&mut self, line_addr: u64) -> Option<SectorState> {
        let (set, tag) = self.index(line_addr);
        for way in self.ways_of(set) {
            if way.valid && way.tag == tag {
                way.valid = false;
                return Some(way.sectors);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::new(512, 2)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.sets(), 4);
        assert_eq!(c.ways(), 2);
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = small();
        assert_eq!(c.access(0x1000, 0, false), Probe::LineMiss);
        assert!(c.fill(0x1000, SectorState::full()).is_none());
        assert_eq!(c.access(0x1000, 3, false), Probe::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().line_misses, 1);
    }

    #[test]
    fn sector_miss_when_line_present_but_sector_invalid() {
        let mut c = small();
        c.fill(0x2000, SectorState::single(1));
        assert_eq!(c.access(0x2000, 1, false), Probe::Hit);
        assert_eq!(c.access(0x2000, 2, false), Probe::SectorMiss);
        assert_eq!(c.stats().sector_misses, 1);
    }

    #[test]
    fn fill_merges_sectors() {
        let mut c = small();
        c.fill(0x2000, SectorState::single(0));
        c.fill(0x2000, SectorState::single(2));
        assert_eq!(c.access(0x2000, 0, false), Probe::Hit);
        assert_eq!(c.access(0x2000, 2, false), Probe::Hit);
        assert_eq!(c.access(0x2000, 1, false), Probe::SectorMiss);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0, 256 (4 sets * 64 = line stride 256 per set).
        c.fill(0, SectorState::full());
        c.fill(256, SectorState::full());
        // Touch line 0 so 256 is LRU.
        c.access(0, 0, false);
        let victim = c.fill(512, SectorState::full()).expect("eviction");
        assert_eq!(victim.line_addr, 256);
        assert!(!victim.needs_writeback());
    }

    #[test]
    fn dirty_eviction_flags_writeback() {
        let mut c = small();
        c.fill(0, SectorState::full());
        c.access(0, 1, true); // dirty sector 1
        c.fill(256, SectorState::full());
        let victim = c.fill(512, SectorState::full()).expect("eviction");
        assert_eq!(victim.line_addr, 0);
        assert!(victim.needs_writeback());
        assert_eq!(victim.sectors.dirty_sectors(), vec![1]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(0x40, SectorState::full());
        assert!(c.invalidate(0x40).is_some());
        assert_eq!(c.access(0x40, 0, false), Probe::LineMiss);
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut c = small();
        c.fill(0x40, SectorState::full());
        let before = *c.stats();
        assert_eq!(c.peek(0x40, 0), Probe::Hit);
        assert_eq!(c.peek(0x80, 0), Probe::LineMiss);
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn victim_address_reconstruction() {
        let mut c = small();
        let addr = 0x1234u64 & !(LINE_BYTES - 1); // 0x1200 | 0x30 -> line 0x1200+0x30? keep aligned
        c.fill(addr, SectorState::full());
        // Force eviction by filling two more lines in the same set.
        let stride = 4 * LINE_BYTES; // set stride
        c.fill(addr + stride, SectorState::full());
        let v = c.fill(addr + 2 * stride, SectorState::full()).unwrap();
        assert_eq!(v.line_addr, addr);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        SetAssocCache::new(192, 1);
    }

    #[test]
    fn owner_sticks_to_the_installer_and_rides_victims() {
        let mut c = small();
        c.fill_owned(0, SectorState::single(0), 2);
        assert_eq!(c.owner_of(0), Some(2));
        // Merging more sectors (even from another core) keeps the installer.
        c.fill_owned(0, SectorState::single(1), 3);
        assert_eq!(c.owner_of(0), Some(2));
        c.access(0, 0, true); // dirty so the eviction needs a writeback
        c.fill_owned(256, SectorState::full(), 1);
        let v = c.fill_owned(512, SectorState::full(), 1).expect("eviction");
        assert_eq!((v.line_addr, v.owner), (0, 2));
        // drain_dirty victims carry the owner too.
        let mut c2 = small();
        c2.fill_owned(64, SectorState::full(), 5);
        c2.access(64, 2, true);
        let drained = c2.drain_dirty();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].owner, 5);
        // The attribution-neutral wrapper defaults to core 0.
        let mut c3 = small();
        c3.fill(128, SectorState::full());
        assert_eq!(c3.owner_of(128), Some(0));
        assert_eq!(c3.owner_of(0x9000), None);
    }
}

//! The three-level cache hierarchy of Table 2, with sector fills.
//!
//! L1 32KB / L2 256KB / LLC 8MB, all 8-way with 64B lines. Lines are
//! sectored (Section 5.1.1): a regular memory fill validates all four 16B
//! sectors, a stride fill validates a single sector in each gathered line.
//! Writes are write-back/write-allocate; dirty data migrates down on
//! eviction and only LLC evictions reach memory (returned to the caller as
//! [`Writeback`]s so the simulator can issue the corresponding regular or
//! stride write bursts).

use crate::sector::{split_sector, SectorState};
use crate::set_assoc::{CacheStats, Probe, SetAssocCache};
use sam_obs::profile::phase;
use sam_obs::registry as obs;

pub use crate::set_assoc::Victim as Writeback;

/// Which level satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    Llc,
    /// Not cached: memory must be accessed.
    Memory,
}

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (write-allocate: on miss, fill then re-access).
    Write,
}

/// Result of a hierarchy access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessResult {
    /// Level that satisfied the access ([`HitLevel::Memory`] on full miss).
    pub level: HitLevel,
    /// Lookup latency in CPU cycles up to (and including) the hit level;
    /// for misses, the latency spent discovering the miss.
    pub latency: u64,
    /// Whether the line was present but the *sector* invalid somewhere on
    /// the path (a sector miss still requires a memory fetch, but only of
    /// 16B — it is SAM's stride fill granularity at work).
    pub sector_miss: bool,
}

impl AccessResult {
    /// Whether the caller must fetch from memory before retrying.
    pub fn memory_fill_needed(&self) -> bool {
        self.level == HitLevel::Memory
    }
}

/// Hierarchy geometry and lookup latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 capacity in bytes.
    pub l1_bytes: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// LLC capacity in bytes.
    pub llc_bytes: u64,
    /// Associativity at every level (Table 2: 8).
    pub ways: usize,
    /// L1 hit latency (CPU cycles).
    pub l1_latency: u64,
    /// L2 hit latency.
    pub l2_latency: u64,
    /// LLC hit latency.
    pub llc_latency: u64,
}

impl HierarchyConfig {
    /// Table 2's configuration.
    pub fn table2() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            llc_bytes: 8 * 1024 * 1024,
            ways: 8,
            l1_latency: 4,
            l2_latency: 12,
            llc_latency: 38,
        }
    }

    /// A tiny hierarchy for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            l1_bytes: 1024,
            l2_bytes: 4096,
            llc_bytes: 16 * 1024,
            ways: 2,
            l1_latency: 4,
            l2_latency: 12,
            llc_latency: 38,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// The assembled L1/L2/LLC sector-cache hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    /// Optional trace sink (miss/fill/promote instants). The hierarchy has
    /// no clock of its own, so the driving engine supplies timestamps via
    /// [`Self::set_trace_clock`].
    trace: sam_trace::SinkSlot,
    trace_now: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self {
            cfg,
            l1: SetAssocCache::new(cfg.l1_bytes, cfg.ways),
            l2: SetAssocCache::new(cfg.l2_bytes, cfg.ways),
            llc: SetAssocCache::new(cfg.llc_bytes, cfg.ways),
            trace: sam_trace::SinkSlot::default(),
            trace_now: 0,
        }
    }

    /// Attaches a trace sink; miss/fill/sector-promote instants are
    /// emitted on the cache lane from now on.
    pub fn attach_trace(&mut self, sink: sam_trace::SharedSink) {
        self.trace.attach(sink);
    }

    /// Whether a trace sink is attached (drivers skip clock upkeep
    /// otherwise).
    pub fn trace_attached(&self) -> bool {
        self.trace.is_attached()
    }

    /// Sets the memory-cycle timestamp stamped on subsequent trace events.
    pub fn set_trace_clock(&mut self, now: u64) {
        self.trace_now = now;
    }

    #[inline]
    fn trace_instant(&self, name: &'static str, addr: u64) {
        self.trace.emit(sam_trace::TraceEvent::instant(
            sam_trace::event::track::CACHE,
            sam_trace::Category::Cache,
            name,
            self.trace_now,
            addr,
        ));
    }

    /// Per-level statistics: (L1, L2, LLC).
    pub fn stats(&self) -> (&CacheStats, &CacheStats, &CacheStats) {
        (self.l1.stats(), self.l2.stats(), self.llc.stats())
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Read-only view of the L1 (for external invariant checking).
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    /// Read-only view of the L2.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// Read-only view of the LLC.
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// Accesses the 16B sector containing `addr`.
    ///
    /// On a hit below L1, the sector is promoted into the upper levels.
    /// On a miss (line or sector), nothing is filled — the caller fetches
    /// from memory and then calls [`Self::fill_line`] or
    /// [`Self::fill_sector`]; a subsequent access will hit.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        let _p = phase("cache");
        let res = self.access_inner(addr, kind);
        if res.sector_miss {
            obs::CACHE_SECTOR_MISSES.add(1);
        }
        if matches!(res.level, HitLevel::Memory) {
            obs::CACHE_MEM_MISSES.add(1);
        }
        res
    }

    fn access_inner(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        let (line, sector) = split_sector(addr);
        let write = kind == AccessKind::Write;
        let mut sector_miss = false;

        match self.l1.access(line, sector, write) {
            Probe::Hit => {
                return AccessResult {
                    level: HitLevel::L1,
                    latency: self.cfg.l1_latency,
                    sector_miss,
                }
            }
            Probe::SectorMiss => sector_miss = true,
            Probe::LineMiss => {}
        }
        match self.l2.access(line, sector, false) {
            Probe::Hit => {
                self.promote_to_l1(line, sector, write);
                return AccessResult {
                    level: HitLevel::L2,
                    latency: self.cfg.l2_latency,
                    sector_miss,
                };
            }
            Probe::SectorMiss => sector_miss = true,
            Probe::LineMiss => {}
        }
        match self.llc.access(line, sector, false) {
            Probe::Hit => {
                self.promote_to_l2(line, sector);
                self.promote_to_l1(line, sector, write);
                AccessResult {
                    level: HitLevel::Llc,
                    latency: self.cfg.llc_latency,
                    sector_miss,
                }
            }
            Probe::SectorMiss => {
                sector_miss = true;
                self.trace_instant("miss", addr);
                AccessResult {
                    level: HitLevel::Memory,
                    latency: self.cfg.llc_latency,
                    sector_miss,
                }
            }
            Probe::LineMiss => {
                self.trace_instant("miss", addr);
                AccessResult {
                    level: HitLevel::Memory,
                    latency: self.cfg.llc_latency,
                    sector_miss,
                }
            }
        }
    }

    fn promote_to_l1(&mut self, line: u64, sector: usize, write: bool) {
        self.trace_instant("promote-l1", line + 16 * sector as u64);
        // Promotion keeps the line's attribution from the level that hit.
        let owner = self.l2.owner_of(line).unwrap_or(0);
        if let Some(victim) = self.l1.fill_owned(line, SectorState::single(sector), owner) {
            if victim.needs_writeback() {
                self.l2
                    .fill_owned(victim.line_addr, victim.sectors, victim.owner);
            }
        }
        if write {
            // Sector now valid in L1; mark it dirty.
            let _ = self.l1.access(line, sector, true);
        }
    }

    fn promote_to_l2(&mut self, line: u64, sector: usize) {
        self.trace_instant("promote-l2", line + 16 * sector as u64);
        let owner = self.llc.owner_of(line).unwrap_or(0);
        if let Some(victim) = self.l2.fill_owned(line, SectorState::single(sector), owner) {
            if victim.needs_writeback() {
                self.llc
                    .fill_owned(victim.line_addr, victim.sectors, victim.owner);
            }
        }
    }

    /// Marks the sector containing `addr` dirty (completes a write-allocate
    /// once the fill has been installed). Dirtiness is owned by the highest
    /// level holding the sector — it migrates down on eviction.
    /// Returns `true` if some level held the sector.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (line, sector) = split_sector(addr);
        self.l1.mark_dirty(line, sector)
            || self.l2.mark_dirty(line, sector)
            || self.llc.mark_dirty(line, sector)
    }

    /// Installs a full line (a regular 64B memory fill) at every level.
    /// Returns memory writebacks caused by LLC evictions.
    ///
    /// Attribution-neutral: the line is owned by core 0. Multicore drivers
    /// use [`Self::fill_line_owned`].
    pub fn fill_line(&mut self, addr: u64) -> Vec<Writeback> {
        self.fill_line_owned(addr, 0)
    }

    /// [`Self::fill_line`] with the line attributed to `owner`; victims
    /// displaced anywhere along the spill path keep their own installer, so
    /// the returned writebacks carry the core whose data is evicted.
    pub fn fill_line_owned(&mut self, addr: u64, owner: u8) -> Vec<Writeback> {
        self.trace_instant("fill-line", addr);
        self.fill(addr, SectorState::full(), owner)
    }

    /// Installs a single 16B sector (a stride fill) at every level.
    /// Returns memory writebacks caused by LLC evictions.
    ///
    /// Attribution-neutral: the line is owned by core 0. Multicore drivers
    /// use [`Self::fill_sector_owned`].
    pub fn fill_sector(&mut self, addr: u64) -> Vec<Writeback> {
        self.fill_sector_owned(addr, 0)
    }

    /// [`Self::fill_sector`] with the filled line attributed to `owner`.
    pub fn fill_sector_owned(&mut self, addr: u64, owner: u8) -> Vec<Writeback> {
        self.trace_instant("fill-sector", addr);
        let (_, sector) = split_sector(addr);
        self.fill(addr, SectorState::single(sector), owner)
    }

    fn fill(&mut self, addr: u64, state: SectorState, owner: u8) -> Vec<Writeback> {
        let (line, _) = split_sector(addr);
        let mut writebacks = Vec::new();
        if let Some(v) = self.llc.fill_owned(line, state, owner) {
            if v.needs_writeback() {
                writebacks.push(v);
            }
        }
        if let Some(v) = self.l2.fill_owned(line, state, owner) {
            if v.needs_writeback() {
                if let Some(v2) = self.llc.fill_owned(v.line_addr, v.sectors, v.owner) {
                    if v2.needs_writeback() {
                        writebacks.push(v2);
                    }
                }
            }
        }
        if let Some(v) = self.l1.fill_owned(line, state, owner) {
            if v.needs_writeback() {
                if let Some(v2) = self.l2.fill_owned(v.line_addr, v.sectors, v.owner) {
                    if v2.needs_writeback() {
                        if let Some(v3) = self.llc.fill_owned(v2.line_addr, v2.sectors, v2.owner) {
                            if v3.needs_writeback() {
                                writebacks.push(v3);
                            }
                        }
                    }
                }
            }
        }
        writebacks
    }

    /// Flushes every dirty line out of the hierarchy, returning the
    /// writebacks (used at the end of a workload to account for write
    /// traffic symmetrically across designs). Dirty data migrates L1 -> L2
    /// -> LLC first; any dirty line displaced along the way is surfaced too.
    pub fn flush_dirty(&mut self) -> Vec<Writeback> {
        let mut writebacks = Vec::new();
        for v in self.l1.drain_dirty() {
            if let Some(ev) = self.l2.fill_owned(v.line_addr, v.sectors, v.owner) {
                if ev.needs_writeback() {
                    if let Some(ev2) = self.llc.fill_owned(ev.line_addr, ev.sectors, ev.owner) {
                        if ev2.needs_writeback() {
                            writebacks.push(ev2);
                        }
                    }
                }
            }
        }
        for v in self.l2.drain_dirty() {
            if let Some(ev) = self.llc.fill_owned(v.line_addr, v.sectors, v.owner) {
                if ev.needs_writeback() {
                    writebacks.push(ev);
                }
            }
        }
        writebacks.extend(self.llc.drain_dirty());
        writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn cold_miss_then_fill_then_l1_hit() {
        let mut h = h();
        let r = h.access(0x1000, AccessKind::Read);
        assert_eq!(r.level, HitLevel::Memory);
        assert!(r.memory_fill_needed());
        h.fill_line(0x1000);
        let r2 = h.access(0x1000, AccessKind::Read);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, 4);
    }

    #[test]
    fn sector_fill_hits_only_that_sector() {
        let mut h = h();
        h.fill_sector(0x1010); // sector 1 of line 0x1000
        let hit = h.access(0x1010, AccessKind::Read);
        assert_eq!(hit.level, HitLevel::L1);
        let miss = h.access(0x1020, AccessKind::Read);
        assert_eq!(miss.level, HitLevel::Memory);
        assert!(miss.sector_miss, "line present, sector invalid");
    }

    #[test]
    fn promotion_from_llc() {
        let mut h = h();
        h.fill_line(0x2000);
        // Evict from L1 (set stride 512B) and L2 (set stride 2KB) with
        // conflicting fills that land in *different* LLC sets (LLC set
        // stride 8KB), so the line survives only in the LLC.
        for i in 1..=4u64 {
            h.fill_line(0x2000 + i * 2048);
        }
        // The original line should still be in LLC; access promotes it.
        let r = h.access(0x2000, AccessKind::Read);
        assert!(r.level <= HitLevel::Llc, "found at {:?}", r.level);
        let r2 = h.access(0x2000, AccessKind::Read);
        assert_eq!(r2.level, HitLevel::L1, "promoted after first touch");
    }

    #[test]
    fn write_marks_dirty_and_evicts_to_memory() {
        let mut h = h();
        h.fill_line(0x3000);
        let w = h.access(0x3000, AccessKind::Write);
        assert_eq!(w.level, HitLevel::L1);
        // Flush everything dirty out of the LLC: but the dirty bit lives in
        // L1; streaming evictions carry it down. Force it by conflicting
        // fills through all levels.
        let mut wbs = Vec::new();
        for i in 1..200u64 {
            wbs.extend(h.fill_line(0x3000 + i * 1024));
        }
        wbs.extend(h.flush_dirty());
        assert!(
            wbs.iter().any(|w| w.line_addr == 0x3000),
            "dirty line eventually written back; got {} wbs",
            wbs.len()
        );
    }

    #[test]
    fn write_miss_reports_memory() {
        let mut h = h();
        let r = h.access(0x4000, AccessKind::Write);
        assert_eq!(r.level, HitLevel::Memory);
        h.fill_line(0x4000);
        let r2 = h.access(0x4000, AccessKind::Write);
        assert_eq!(r2.level, HitLevel::L1);
    }

    #[test]
    fn writebacks_carry_the_installing_core() {
        let mut h = h();
        h.fill_line_owned(0x3000, 2);
        let w = h.access(0x3000, AccessKind::Write);
        assert_eq!(w.level, HitLevel::L1);
        let mut wbs = Vec::new();
        for i in 1..200u64 {
            wbs.extend(h.fill_line_owned(0x3000 + i * 1024, 7));
        }
        wbs.extend(h.flush_dirty());
        let wb = wbs
            .iter()
            .find(|w| w.line_addr == 0x3000)
            .expect("dirty line written back");
        assert_eq!(wb.owner, 2, "attribution survives the spill path");
        // The neutral wrappers keep everything on core 0.
        let mut h0 = Hierarchy::new(HierarchyConfig::tiny());
        h0.fill_line(0x4000);
        h0.access(0x4000, AccessKind::Write);
        for wb in h0.flush_dirty() {
            assert_eq!(wb.owner, 0);
        }
    }

    #[test]
    fn stats_reflect_levels() {
        let mut h = h();
        h.fill_line(0);
        h.access(0, AccessKind::Read); // L1 hit: lower levels not probed
        h.access(0x9000, AccessKind::Read); // cold miss probes all levels
        let (l1, l2, llc) = h.stats();
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.line_misses, 1);
        assert_eq!(l2.line_misses, 1);
        assert_eq!(llc.line_misses, 1);
    }
}

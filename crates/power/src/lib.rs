//! Power and energy model (Section 6.1 "Power", Figure 13).
//!
//! Follows the Micron DDR4 power-calculator methodology the paper uses:
//! per-command energies derived from data-sheet IDD currents, plus
//! state-dependent background power, summed over a run's command counts.
//! Per-design adjustments mirror the paper:
//!
//! * **SAM-IO** internally activates and moves 4x the transferred data in
//!   stride mode (the whole 128-bit buffer is filled); its stride reads
//!   charge the array-side energy multiplied by the over-fetch factor.
//! * **SAM-en** adds fine-grained activation (option 1): activations serving
//!   stride bursts open only the mats that hold useful data.
//! * **SAM-sub** pays ~2% extra background power for its added decode/SA
//!   logic.
//! * **RRAM** (RC-NVM's substrate) has near-zero background power but
//!   expensive writes, and needs no refresh.
//!
//! # Example
//!
//! ```
//! use sam_power::{ActivityCounts, PowerParams};
//! use sam::designs::commodity;
//!
//! let params = PowerParams::ddr4();
//! let activity = ActivityCounts { cycles: 1_000_000, acts: 1_000, reads: 8_000,
//!     writes: 1_000, stride_reads: 0, stride_writes: 0, refreshes: 100, gather: 8 };
//! let breakdown = sam_power::breakdown(&params, &commodity(), &activity);
//! assert!(breakdown.total_mw() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sam::design::Design;
use sam::system::RunResult;
use sam_dram::timing::Substrate;

/// Electrical parameters of one memory chip plus rank geometry.
///
/// DDR4 values follow the Micron 8Gb DDR4-2400 data sheet the paper cites
/// (IDD in mA, VDD in volts); RRAM values follow the RC-NVM/NVMain models:
/// negligible standby current, read similar to DRAM, writes several times
/// more expensive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// One ACT-PRE cycle current (mA).
    pub idd0: f64,
    /// Precharge standby current (mA).
    pub idd2n: f64,
    /// Active standby current (mA).
    pub idd3n: f64,
    /// Read burst current (mA).
    pub idd4r: f64,
    /// Write burst current (mA).
    pub idd4w: f64,
    /// Refresh current (mA).
    pub idd5: f64,
    /// Clock period (ns) — DDR4-2400 command clock: 0.833 ns.
    pub tck_ns: f64,
    /// Chips per rank sharing the channel (18 for the x4 server rank).
    pub chips: u32,
    /// Row cycle / activate window in clocks (for ACT energy).
    pub trc: f64,
    /// Refresh cycle time in clocks (for REF energy).
    pub trfc: f64,
    /// Burst occupancy in clocks (BL8 = 4).
    pub tburst: f64,
    /// Fraction of a read burst's energy spent on the array/GIO side (the
    /// part SAM-IO's over-fetch multiplies) vs. the I/O drivers.
    pub array_fraction: f64,
    /// Write-energy multiplier relative to the IDD4W baseline (RRAM's
    /// SET/RESET pulses).
    pub write_multiplier: f64,
    /// Background-power scale (RRAM: near zero).
    pub background_scale: f64,
}

impl PowerParams {
    /// Micron 8Gb DDR4-2400 x4.
    pub fn ddr4() -> Self {
        Self {
            vdd: 1.2,
            idd0: 48.0,
            idd2n: 34.0,
            idd3n: 42.0,
            idd4r: 130.0,
            idd4w: 125.0,
            idd5: 38.0,
            tck_ns: 1.0 / 1.2,
            chips: 18,
            trc: 56.0,
            trfc: 420.0,
            tburst: 4.0,
            array_fraction: 0.6,
            write_multiplier: 1.0,
            background_scale: 1.0,
        }
    }

    /// RRAM modelled after the RC-NVM / NVMain parameters: near-zero
    /// background, no refresh, writes ~5x a DRAM write burst.
    pub fn rram() -> Self {
        Self {
            idd5: 0.0,
            write_multiplier: 5.0,
            background_scale: 0.02,
            ..Self::ddr4()
        }
    }

    /// Parameters matching a design's substrate.
    pub fn for_design(design: &Design) -> Self {
        match design.substrate {
            Substrate::Dram => Self::ddr4(),
            Substrate::Rram => Self::rram(),
        }
    }
}

/// Command counts and duration of a run (extractable from a
/// [`RunResult`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Total memory-clock cycles.
    pub cycles: u64,
    /// Row activations.
    pub acts: u64,
    /// Regular read bursts.
    pub reads: u64,
    /// Regular write bursts.
    pub writes: u64,
    /// Stride-mode read bursts.
    pub stride_reads: u64,
    /// Stride-mode write bursts.
    pub stride_writes: u64,
    /// Refreshes.
    pub refreshes: u64,
    /// Gather factor of stride bursts (for fine-grained-activation scaling).
    pub gather: u64,
}

impl ActivityCounts {
    /// Extracts counts from a run result.
    pub fn from_run(run: &RunResult, gather: u64) -> Self {
        Self {
            cycles: run.cycles,
            acts: run.device.acts,
            reads: run.device.reads,
            writes: run.device.writes,
            stride_reads: run.device.stride_reads,
            stride_writes: run.device.stride_writes,
            refreshes: run.device.refreshes,
            gather,
        }
    }
}

/// Average-power breakdown over a run, in milliwatts (whole rank).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Standby/background power.
    pub background_mw: f64,
    /// Activate/precharge power.
    pub act_mw: f64,
    /// Read/write burst power (including refresh).
    pub rdwr_mw: f64,
}

impl Breakdown {
    /// Total average power.
    pub fn total_mw(&self) -> f64 {
        self.background_mw + self.act_mw + self.rdwr_mw
    }
}

/// Computes the average-power breakdown of a run under `design`.
///
/// # Panics
///
/// Panics if `activity.cycles == 0`.
pub fn breakdown(params: &PowerParams, design: &Design, activity: &ActivityCounts) -> Breakdown {
    assert!(activity.cycles > 0, "a run must span at least one cycle");
    let p = params;
    let chips = p.chips as f64;
    let time_ns = activity.cycles as f64 * p.tck_ns;

    // Background: blended standby current, scaled by substrate and the
    // design's extra logic. Assume banks active ~60% of a busy run.
    let bg_ma = 0.6 * p.idd3n + 0.4 * p.idd2n;
    let background_mw =
        p.vdd * bg_ma * chips * p.background_scale * (1.0 + design.power.background_extra);

    // ACT energy per command (nJ, rank-wide): the IDD0 loop minus the
    // standby floor over one tRC.
    let e_act = p.vdd * (p.idd0 - p.idd3n) * p.trc * p.tck_ns * chips * 1e-3; // mA*ns*V = pJ*1e0... keep consistent units below
                                                                              // Fine-grained activation (SAM-en option 1): activations that serve
                                                                              // stride bursts open only 1/gather of the mats.
    let total_bursts =
        (activity.reads + activity.writes + activity.stride_reads + activity.stride_writes).max(1);
    let stride_share =
        (activity.stride_reads + activity.stride_writes) as f64 / total_bursts as f64;
    let act_scale = if design.power.fine_grained_activation {
        let g = activity.gather.max(1) as f64;
        1.0 - stride_share * (1.0 - 1.0 / g)
    } else {
        1.0
    };
    let act_energy = e_act * activity.acts as f64 * act_scale;

    // Burst energies (per burst, rank-wide).
    let e_rd = p.vdd * (p.idd4r - p.idd3n) * p.tburst * p.tck_ns * chips * 1e-3;
    let e_wr =
        p.vdd * (p.idd4w - p.idd3n) * p.tburst * p.tck_ns * chips * 1e-3 * p.write_multiplier;
    // Stride reads: the array-side share is multiplied by the over-fetch
    // factor (SAM-IO moves 4 buffers internally to send one lane). Stride
    // writes drive only the selected lane's cells, so they do not pay the
    // over-fetch.
    let of = design.power.stride_overfetch;
    let e_srd = e_rd * (p.array_fraction * of + (1.0 - p.array_fraction));
    let e_swr = e_wr;
    let e_ref = p.vdd * (p.idd5 - p.idd3n).max(0.0) * p.trfc * p.tck_ns * chips * 1e-3;
    let rdwr_energy = e_rd * activity.reads as f64
        + e_wr * activity.writes as f64
        + e_srd * activity.stride_reads as f64
        + e_swr * activity.stride_writes as f64
        + e_ref * activity.refreshes as f64;

    // Energy (units: mA*V*ns*1e-3 = microjoule*1e-3... treat consistently):
    // power_mw = energy / time_ns * 1e3 with the 1e-3 factor above giving mW.
    Breakdown {
        background_mw,
        act_mw: act_energy / time_ns * 1e3,
        rdwr_mw: rdwr_energy / time_ns * 1e3,
    }
}

/// Total energy of a run in microjoules.
pub fn energy_uj(params: &PowerParams, design: &Design, activity: &ActivityCounts) -> f64 {
    let b = breakdown(params, design, activity);
    let time_ns = activity.cycles as f64 * params.tck_ns;
    b.total_mw() * time_ns * 1e-6 // mW * ns = pJ; 1e-6 pJ = uJ
}

/// Energy efficiency of `run` relative to `baseline` (the Figure 13 bottom
/// panel): how many times less energy the design uses for the same work.
pub fn energy_efficiency(baseline_uj: f64, design_uj: f64) -> f64 {
    assert!(design_uj > 0.0, "design energy must be positive");
    baseline_uj / design_uj
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam::designs::{commodity, rc_nvm_wd, sam_en, sam_io, sam_sub};

    fn activity(stride: bool) -> ActivityCounts {
        ActivityCounts {
            cycles: 1_000_000,
            acts: 2_000,
            reads: if stride { 0 } else { 16_000 },
            writes: 500,
            stride_reads: if stride { 2_000 } else { 0 },
            stride_writes: 0,
            refreshes: 100,
            gather: 8,
        }
    }

    #[test]
    fn commodity_breakdown_positive_components() {
        let b = breakdown(&PowerParams::ddr4(), &commodity(), &activity(false));
        assert!(b.background_mw > 0.0 && b.act_mw > 0.0 && b.rdwr_mw > 0.0);
        assert!(b.total_mw() > b.background_mw);
    }

    #[test]
    fn sam_io_stride_reads_cost_more_than_sam_en() {
        let a = activity(true);
        let io = breakdown(&PowerParams::ddr4(), &sam_io(), &a);
        let en = breakdown(&PowerParams::ddr4(), &sam_en(), &a);
        assert!(io.rdwr_mw > en.rdwr_mw, "over-fetch must cost energy");
        assert!(
            io.act_mw > en.act_mw,
            "fine-grained activation saves ACT energy"
        );
    }

    #[test]
    fn sam_sub_background_exceeds_commodity() {
        let a = activity(false);
        let sub = breakdown(&PowerParams::ddr4(), &sam_sub(), &a);
        let base = breakdown(&PowerParams::ddr4(), &commodity(), &a);
        let ratio = sub.background_mw / base.background_mw;
        assert!((ratio - 1.02).abs() < 1e-9);
    }

    #[test]
    fn rram_background_near_zero_writes_expensive() {
        let a = ActivityCounts {
            writes: 5_000,
            refreshes: 0,
            ..activity(false)
        };
        let rram = breakdown(&PowerParams::rram(), &rc_nvm_wd(), &a);
        let dram = breakdown(&PowerParams::ddr4(), &commodity(), &a);
        assert!(rram.background_mw < 0.05 * dram.background_mw);
        assert!(rram.rdwr_mw > dram.rdwr_mw, "RRAM writes dominate");
    }

    #[test]
    fn energy_scales_with_time_and_commands() {
        let p = PowerParams::ddr4();
        let a1 = activity(false);
        let mut a2 = a1;
        a2.reads *= 2;
        let e1 = energy_uj(&p, &commodity(), &a1);
        let e2 = energy_uj(&p, &commodity(), &a2);
        assert!(e2 > e1);
        assert!(energy_efficiency(e2, e1) > 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycle_run_panics() {
        let a = ActivityCounts {
            cycles: 0,
            ..activity(false)
        };
        breakdown(&PowerParams::ddr4(), &commodity(), &a);
    }

    #[test]
    fn refresh_energy_absent_on_rram() {
        let p = PowerParams::rram();
        assert_eq!(p.idd5, 0.0);
        let a = ActivityCounts {
            refreshes: 1000,
            ..activity(false)
        };
        // (idd5 - idd3n) clamps at zero: refresh adds nothing.
        let with = breakdown(&p, &rc_nvm_wd(), &a);
        let without = breakdown(&p, &rc_nvm_wd(), &ActivityCounts { refreshes: 0, ..a });
        assert!((with.total_mw() - without.total_mw()).abs() < 1e-9);
    }
}

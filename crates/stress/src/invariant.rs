//! The behavioural invariants a stress run is checked against.
//!
//! These are deliberately *not* JEDEC protocol rules — `sam-check`'s
//! oracle owns those. They are end-to-end scheduler properties that no
//! single command can violate but a mis-tuned policy can:
//!
//! * **ReadResidencyBound** — with a finite starvation cap, no read sits
//!   in the queue longer than the cap plus a drain-window bound derived
//!   from the device timing and the outstanding work (writes are posted
//!   and legitimately unbounded below the high watermark).
//! * **WatermarkSupremacy** — whenever both queues are non-empty and the
//!   write queue is at or above the high watermark at a scheduling
//!   decision, that decision must serve a write. This is the hysteresis
//!   latch's defining obligation; inverted margins (`lo >= hi`) break it
//!   within a handful of requests, which is what makes minimal repros
//!   small.
//! * **ForwardProgress** — the scheduler never goes idle with work
//!   queued, and every admitted request completes by end of stream.
//! * **LaneConservation** — the per-(core, kind) provenance lanes
//!   telescope to the aggregate controller counters exactly: no completed
//!   burst is double-charged to or dropped from the attribution
//!   accounting (refreshes are excluded by construction — rank-level
//!   background work no request owns).

use sam_dram::Cycle;

/// Which invariant a violation is against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// A read overstayed `cap + drain window` in the queue.
    ReadResidencyBound,
    /// A read was served while the write queue was at/above the high
    /// watermark with both queues non-empty.
    WatermarkSupremacy,
    /// The scheduler idled with work queued, or a request never
    /// completed.
    ForwardProgress,
    /// The per-core provenance lanes did not sum to the aggregate
    /// controller counters.
    LaneConservation,
}

impl InvariantKind {
    /// Stable name used in reports, traces, and CI greps.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::ReadResidencyBound => "ReadResidencyBound",
            InvariantKind::WatermarkSupremacy => "WatermarkSupremacy",
            InvariantKind::ForwardProgress => "ForwardProgress",
            InvariantKind::LaneConservation => "LaneConservation",
        }
    }
}

impl std::fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant violation observed during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant.
    pub kind: InvariantKind,
    /// Positional id of the offending request.
    pub request_id: u64,
    /// Cycle the violation was observed at.
    pub at: Cycle,
    /// Human-readable specifics (queue depths, residency vs bound, ...).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ cycle {}: request {}: {}",
            self.kind, self.at, self.request_id, self.detail
        )
    }
}

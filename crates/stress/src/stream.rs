//! Timed request streams and the replayable stress-trace text format.
//!
//! A stress stream is a controller configuration plus a sequence of
//! [`MemRequest`]s with non-decreasing arrival cycles. Streams are the
//! currency of the whole crate: pattern generators produce them, the
//! driver executes them, the shrinker subsets them, and this module's
//! text format makes any of them a standalone, replayable artifact —
//! `sam-check replay` recognises the header and re-runs the stream
//! through [`crate::driver::run_stream`], reproducing the exact
//! scheduling decisions (and therefore the exact invariant violations)
//! of the original run.
//!
//! The format is line-oriented:
//!
//! ```text
//! # sam-stress trace v1
//! config device=ddr4 cap=4096 hi=28 lo=8
//! req 0 R 0x0
//! req 4 W 0x2000
//! req 8 SR 0x4000 gather=8 lane=0
//! req 12 NR 0x40
//! ```
//!
//! Request ids are not serialized: they are positional, reassigned
//! `0..n` on parse (the shrinker renumbers after every subset for the
//! same reason). The leading `#` line doubles as an autodetection
//! marker: `sam-check`'s protocol-trace parser treats `#` lines as
//! comments, so the two formats cannot be confused, and `replay`
//! inspects the first line to dispatch.

use sam_dram::device::DeviceConfig;
use sam_dram::Cycle;
use sam_memctrl::controller::ControllerConfig;
use sam_memctrl::request::{MemRequest, StrideSpec};

/// First line of every stress trace; `sam-check replay` dispatches on it.
pub const STRESS_TRACE_HEADER: &str = "# sam-stress trace v1";

/// Which device substrate a stress run targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// DDR4-2400 server configuration (refresh on).
    Ddr4,
    /// RRAM server configuration (no refresh, slow writes).
    Rram,
}

impl DeviceKind {
    /// The full device configuration.
    pub fn config(self) -> DeviceConfig {
        match self {
            DeviceKind::Ddr4 => DeviceConfig::ddr4_server(),
            DeviceKind::Rram => DeviceConfig::rram_server(),
        }
    }

    /// Token used in the trace `config` line.
    pub fn token(self) -> &'static str {
        match self {
            DeviceKind::Ddr4 => "ddr4",
            DeviceKind::Rram => "rram",
        }
    }

    /// Parses a `config` line token.
    pub fn from_token(t: &str) -> Option<Self> {
        match t {
            "ddr4" => Some(DeviceKind::Ddr4),
            "rram" => Some(DeviceKind::Rram),
            _ => None,
        }
    }
}

/// The controller knobs a stress run varies: starvation cap and the
/// write-drain hysteresis pair. Everything else stays at the Table 2
/// defaults of [`ControllerConfig::with_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StressConfig {
    /// Target device.
    pub device: DeviceKind,
    /// FR-FCFS starvation cap in memory cycles (0 = pure FCFS).
    pub starvation_cap: Cycle,
    /// Write-drain high watermark.
    pub drain_hi: usize,
    /// Write-drain low watermark.
    pub drain_lo: usize,
    /// Replay through the naive reference scheduler instead of the
    /// group tournament (see
    /// [`ControllerConfig::reference_scheduler`]); the differential
    /// matrix proves the two paths byte-identical on every stream.
    pub reference_scheduler: bool,
}

impl StressConfig {
    /// A validated configuration (`lo < hi <= write queue depth`).
    ///
    /// # Errors
    ///
    /// Returns a description of the broken constraint.
    pub fn new(
        device: DeviceKind,
        starvation_cap: Cycle,
        drain_hi: usize,
        drain_lo: usize,
    ) -> Result<Self, String> {
        let cfg = Self::unchecked(device, starvation_cap, drain_hi, drain_lo);
        cfg.validate().map(|()| cfg)
    }

    /// The DDR4 defaults every design ships with: cap 4096, hi 28, lo 8.
    pub fn ddr4_default() -> Self {
        let base = ControllerConfig::default();
        Self {
            device: DeviceKind::Ddr4,
            starvation_cap: base.starvation_cap,
            drain_hi: base.write_high_watermark,
            drain_lo: base.write_low_watermark,
            reference_scheduler: base.reference_scheduler,
        }
    }

    /// The same knobs, replayed through the reference scheduler.
    pub fn with_reference_scheduler(mut self) -> Self {
        self.reference_scheduler = true;
        self
    }

    /// Builds the configuration **without** watermark validation.
    ///
    /// This is both the shrinker's test hook (a deliberately mis-tuned
    /// `lo > hi` config is what the selftest shrinks against) and the
    /// parser's constructor: a minimal-repro trace *records* a broken
    /// config, so parsing must accept what validation rejects.
    pub fn unchecked(
        device: DeviceKind,
        starvation_cap: Cycle,
        drain_hi: usize,
        drain_lo: usize,
    ) -> Self {
        Self {
            device,
            starvation_cap,
            drain_hi,
            drain_lo,
            reference_scheduler: false,
        }
    }

    /// Checks `lo < hi <= write queue depth`.
    ///
    /// # Errors
    ///
    /// Returns a description of the broken constraint.
    pub fn validate(&self) -> Result<(), String> {
        let depth = ControllerConfig::with_device(self.device.config()).write_queue_capacity;
        if self.drain_lo >= self.drain_hi || self.drain_hi > depth {
            return Err(format!(
                "drain watermarks lo={} hi={} violate lo < hi <= {depth}",
                self.drain_lo, self.drain_hi
            ));
        }
        Ok(())
    }

    /// The full controller configuration this run executes under.
    pub fn controller_config(&self) -> ControllerConfig {
        let mut cfg = ControllerConfig::with_device(self.device.config());
        cfg.starvation_cap = self.starvation_cap;
        cfg.write_high_watermark = self.drain_hi;
        cfg.write_low_watermark = self.drain_lo;
        cfg.reference_scheduler = self.reference_scheduler;
        cfg
    }
}

/// One request with its nominal arrival cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimedRequest {
    /// The request (id is positional within its stream).
    pub req: MemRequest,
    /// Cycle the request reaches the controller front-end.
    pub arrival: Cycle,
}

/// A complete, self-contained stress workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StressStream {
    /// Knobs the stream runs under when replayed standalone.
    pub config: StressConfig,
    /// Requests in arrival order (non-decreasing `arrival`).
    pub requests: Vec<TimedRequest>,
}

/// Reassigns ids positionally (`0..n`), the invariant every consumer of
/// a subsetted or parsed stream relies on.
pub fn renumber(requests: &mut [TimedRequest]) {
    for (i, t) in requests.iter_mut().enumerate() {
        t.req.id = i as u64;
    }
}

fn kind_token(req: &MemRequest) -> &'static str {
    match (req.is_write, req.stride.is_some(), req.narrow) {
        (false, false, false) => "R",
        (true, false, false) => "W",
        (false, true, _) => "SR",
        (true, true, _) => "SW",
        (false, false, true) => "NR",
        (true, false, true) => "NW",
    }
}

/// Renders `stream` in the replayable text format.
pub fn format_stream(stream: &StressStream) -> String {
    let c = &stream.config;
    let mut out = String::new();
    out.push_str(STRESS_TRACE_HEADER);
    out.push('\n');
    out.push_str(&format!(
        "config device={} cap={} hi={} lo={}{}\n",
        c.device.token(),
        c.starvation_cap,
        c.drain_hi,
        c.drain_lo,
        // Only serialized when set, so pre-existing recorded traces stay
        // byte-identical and replay through the default (tournament) path.
        if c.reference_scheduler {
            " sched=reference"
        } else {
            ""
        }
    ));
    for t in &stream.requests {
        let r = &t.req;
        out.push_str(&format!(
            "req {} {} {:#x}",
            t.arrival,
            kind_token(r),
            r.addr
        ));
        if let Some(s) = r.stride {
            let lane = match s.mode {
                sam_dram::moderegs::IoMode::Sx4(n) => n,
                _ => 0,
            };
            out.push_str(&format!(" gather={} lane={lane}", s.gather));
        }
        out.push('\n');
    }
    out
}

fn parse_kv<'a>(part: &'a str, key: &str, line: usize) -> Result<&'a str, String> {
    part.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| format!("line {line}: expected {key}=<value>, got '{part}'"))
}

fn parse_addr(tok: &str, line: usize) -> Result<u64, String> {
    let hex = tok
        .strip_prefix("0x")
        .ok_or_else(|| format!("line {line}: address '{tok}' must be 0x-prefixed hex"))?;
    u64::from_str_radix(hex, 16).map_err(|_| format!("line {line}: bad address '{tok}'"))
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str, line: usize) -> Result<T, String> {
    tok.parse()
        .map_err(|_| format!("line {line}: bad {what} '{tok}'"))
}

/// Parses the text format back into a stream.
///
/// Accepts mis-tuned configs (see [`StressConfig::unchecked`]); rejects
/// anything else malformed, including arrivals that go backwards.
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn parse_stream(text: &str) -> Result<StressStream, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty stress trace")?;
    if header.trim() != STRESS_TRACE_HEADER {
        return Err(format!(
            "not a stress trace: expected '{STRESS_TRACE_HEADER}' header"
        ));
    }
    let mut config: Option<StressConfig> = None;
    let mut requests: Vec<TimedRequest> = Vec::new();
    let mut last_arrival: Cycle = 0;
    for (idx, raw) in lines {
        let line = idx + 1; // human 1-based
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = text.split_whitespace().collect();
        match parts[0] {
            "config" => {
                if parts.len() != 5 && parts.len() != 6 {
                    return Err(format!(
                        "line {line}: config needs device/cap/hi/lo [sched]"
                    ));
                }
                let device = DeviceKind::from_token(parse_kv(parts[1], "device", line)?)
                    .ok_or_else(|| format!("line {line}: unknown device"))?;
                let cap = parse_num(parse_kv(parts[2], "cap", line)?, "cap", line)?;
                let hi = parse_num(parse_kv(parts[3], "hi", line)?, "hi", line)?;
                let lo = parse_num(parse_kv(parts[4], "lo", line)?, "lo", line)?;
                let mut cfg = StressConfig::unchecked(device, cap, hi, lo);
                if parts.len() == 6 {
                    cfg.reference_scheduler = match parse_kv(parts[5], "sched", line)? {
                        "reference" => true,
                        "tournament" => false,
                        other => {
                            return Err(format!("line {line}: unknown scheduler '{other}'"));
                        }
                    };
                }
                config = Some(cfg);
            }
            "req" => {
                if parts.len() < 4 {
                    return Err(format!("line {line}: req needs arrival, kind, addr"));
                }
                let arrival: Cycle = parse_num(parts[1], "arrival", line)?;
                if arrival < last_arrival {
                    return Err(format!("line {line}: arrival {arrival} goes backwards"));
                }
                last_arrival = arrival;
                let addr = parse_addr(parts[3], line)?;
                let id = requests.len() as u64;
                let req = match parts[2] {
                    "R" => MemRequest::read(id, addr),
                    "W" => MemRequest::write(id, addr),
                    "NR" => MemRequest::narrow_read(id, addr),
                    "NW" => MemRequest::narrow_write(id, addr),
                    "SR" | "SW" => {
                        if parts.len() != 6 {
                            return Err(format!("line {line}: stride req needs gather= lane="));
                        }
                        let gather: u8 =
                            parse_num(parse_kv(parts[4], "gather", line)?, "gather", line)?;
                        let lane: u8 = parse_num(parse_kv(parts[5], "lane", line)?, "lane", line)?;
                        let spec = StrideSpec {
                            gather,
                            mode: sam_dram::moderegs::IoMode::Sx4(lane),
                        };
                        if parts[2] == "SR" {
                            MemRequest::stride_read(id, addr, spec)
                        } else {
                            MemRequest::stride_write(id, addr, spec)
                        }
                    }
                    other => return Err(format!("line {line}: unknown request kind '{other}'")),
                };
                requests.push(TimedRequest { req, arrival });
            }
            other => return Err(format!("line {line}: unknown directive '{other}'")),
        }
    }
    let config = config.ok_or("stress trace has no config line")?;
    Ok(StressStream { config, requests })
}

/// Whether `text` starts with the stress-trace header (the `sam-check
/// replay` dispatch test).
pub fn is_stress_trace(text: &str) -> bool {
    text.lines().next().map(str::trim) == Some(STRESS_TRACE_HEADER)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StressStream {
        let mut requests = vec![
            TimedRequest {
                req: MemRequest::read(0, 0x0),
                arrival: 0,
            },
            TimedRequest {
                req: MemRequest::write(0, 0x2000),
                arrival: 4,
            },
            TimedRequest {
                req: MemRequest::stride_read(0, 0x4000, StrideSpec::ssc_dsd()),
                arrival: 8,
            },
            TimedRequest {
                req: MemRequest::narrow_read(0, 0x40),
                arrival: 8,
            },
            TimedRequest {
                req: MemRequest::stride_write(0, 0x8000, StrideSpec::ssc()),
                arrival: 12,
            },
            TimedRequest {
                req: MemRequest::narrow_write(0, 0x50),
                arrival: 20,
            },
        ];
        renumber(&mut requests);
        StressStream {
            config: StressConfig::ddr4_default(),
            requests,
        }
    }

    #[test]
    fn roundtrip_preserves_stream() {
        let s = sample();
        let text = format_stream(&s);
        assert!(is_stress_trace(&text));
        let back = parse_stream(&text).unwrap();
        assert_eq!(back, s);
        // And the rendering is a fixpoint.
        assert_eq!(format_stream(&back), text);
    }

    #[test]
    fn reference_scheduler_config_roundtrips() {
        let mut s = sample();
        s.config = s.config.with_reference_scheduler();
        let text = format_stream(&s);
        assert!(text.contains("sched=reference"));
        let back = parse_stream(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(format_stream(&back), text, "rendering is a fixpoint");
        // Bad scheduler tokens are rejected.
        assert!(parse_stream(&text.replace("sched=reference", "sched=magic")).is_err());
        // The explicit tournament spelling parses back to the default.
        let explicit = text.replace("sched=reference", "sched=tournament");
        assert!(!parse_stream(&explicit).unwrap().config.reference_scheduler);
    }

    #[test]
    fn mis_tuned_config_roundtrips_for_repros() {
        let mut s = sample();
        s.config = StressConfig::unchecked(DeviceKind::Ddr4, 4096, 8, 28);
        assert!(s.config.validate().is_err());
        let back = parse_stream(&format_stream(&s)).unwrap();
        assert_eq!(back.config, s.config);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let ok = format_stream(&sample());
        for (broken, why) in [
            (ok.replace("req 20 NW", "req 2 NW"), "backwards arrival"),
            (ok.replace("# sam-stress trace v1", "# other"), "bad header"),
            (ok.replace("0x2000", "2000"), "non-hex address"),
            (
                ok.replace("config device=ddr4", "config device=sram"),
                "bad device",
            ),
            (ok.replace("req 4 W", "req 4 Q"), "bad kind"),
        ] {
            assert!(parse_stream(&broken).is_err(), "{why} accepted");
        }
        assert!(parse_stream("").is_err());
        // A config-less body is rejected too.
        assert!(parse_stream("# sam-stress trace v1\nreq 0 R 0x0\n").is_err());
    }

    #[test]
    fn protocol_traces_are_not_stress_traces() {
        assert!(!is_stress_trace("# sam-check trace v1\ngeometry ..."));
    }
}

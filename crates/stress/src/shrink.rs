//! Greedy delta-debugging over failing streams.
//!
//! Given a stream whose execution violates an invariant, [`shrink_stream`]
//! finds a 1-minimal sub-stream that still violates the *same* invariant
//! kind: classic ddmin — try dropping ever-smaller chunks, keep any drop
//! that preserves the failure, finish with a per-request pass so no
//! single request can be removed. Relative request order (and therefore
//! arrival monotonicity) is preserved; ids are renumbered before every
//! probe because the driver requires positional ids.
//!
//! Determinism note: the predicate re-runs the full driver, so shrinking
//! is slow in the worst case — O(n²) driver runs — but the failures this
//! crate hunts (watermark inversions) collapse within a few hundred
//! probes, and the output is the artifact that matters: a replayable
//! trace a human can read in one screen.

use crate::driver::run_stream;
use crate::invariant::InvariantKind;
use crate::stream::{renumber, StressConfig, StressStream, TimedRequest};

/// Whether executing `requests` under `cfg` violates `kind`.
pub fn violates(cfg: &StressConfig, requests: &[TimedRequest], kind: InvariantKind) -> bool {
    let mut probe = requests.to_vec();
    renumber(&mut probe);
    run_stream(cfg, &probe)
        .violations
        .iter()
        .any(|v| v.kind == kind)
}

/// The first violation kind a run of `requests` under `cfg` produces.
pub fn first_violation(cfg: &StressConfig, requests: &[TimedRequest]) -> Option<InvariantKind> {
    let mut probe = requests.to_vec();
    renumber(&mut probe);
    run_stream(cfg, &probe).violations.first().map(|v| v.kind)
}

/// Reduces `requests` to a 1-minimal stream still violating `kind`
/// under `cfg`, returned as a self-contained replayable stream.
///
/// # Panics
///
/// Panics if the input stream does not violate `kind` — shrinking a
/// passing stream is a caller bug, not an empty result.
pub fn shrink_stream(
    cfg: &StressConfig,
    requests: &[TimedRequest],
    kind: InvariantKind,
) -> StressStream {
    assert!(
        violates(cfg, requests, kind),
        "shrink_stream: input does not violate {kind}"
    );
    let mut current: Vec<TimedRequest> = requests.to_vec();
    // ddmin: drop chunks at shrinking granularity.
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 {
        let mut progressed = false;
        let mut start = 0;
        while start < current.len() && current.len() > 1 {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && violates(cfg, &candidate, kind) {
                current = candidate;
                progressed = true;
                // Same start now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            break;
        }
        chunk = if chunk > 1 { chunk / 2 } else { 1 };
    }
    renumber(&mut current);
    debug_assert!(violates(cfg, &current, kind));
    StressStream {
        config: *cfg,
        requests: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, PatternParams};
    use crate::stream::DeviceKind;

    /// The known-bad synthetic config: inverted hysteresis margins via
    /// the validation-bypassing hook.
    fn inverted() -> StressConfig {
        StressConfig::unchecked(DeviceKind::Ddr4, 4096, 8, 28)
    }

    #[test]
    fn shrinks_write_burst_failure_to_a_screenful() {
        let cfg = inverted();
        let stream = Pattern::WriteBurst.generate(&PatternParams::small(17));
        assert!(violates(&cfg, &stream, InvariantKind::WatermarkSupremacy));
        let minimal = shrink_stream(&cfg, &stream, InvariantKind::WatermarkSupremacy);
        assert!(
            minimal.requests.len() <= 32,
            "minimal repro has {} requests",
            minimal.requests.len()
        );
        // 1-minimality: removing any single request loses the failure.
        for i in 0..minimal.requests.len() {
            let mut sub = minimal.requests.clone();
            sub.remove(i);
            assert!(
                sub.is_empty() || !violates(&cfg, &sub, InvariantKind::WatermarkSupremacy),
                "request {i} was removable"
            );
        }
        // And the repro replays to the same violation via the text form.
        let text = crate::stream::format_stream(&minimal);
        let back = crate::stream::parse_stream(&text).unwrap();
        assert_eq!(
            first_violation(&back.config, &back.requests),
            Some(InvariantKind::WatermarkSupremacy)
        );
    }

    #[test]
    #[should_panic(expected = "does not violate")]
    fn shrinking_a_passing_stream_panics() {
        let stream = Pattern::RowHitFlood.generate(&PatternParams::small(2));
        let _ = shrink_stream(
            &StressConfig::ddr4_default(),
            &stream,
            InvariantKind::WatermarkSupremacy,
        );
    }
}

//! Hybrid-topology differential: the DRAM-cache controller vs its pure
//! functional mirror, on adversarial streams.
//!
//! The flat differential ([`crate::diff`]) compares one stream across
//! scheduler knob settings; this one compares one stream across *model
//! layers* of the [`sam_memctrl::hybrid::DramCacheController`]:
//!
//! * **mirror identity** — the cycle-level controller's per-request
//!   decision stream (hit/miss/dirty-evict/writethrough) must match the
//!   timing-free [`MirrorModel`] exactly, request for request. The
//!   controller updates its tags eagerly at admission precisely so this
//!   holds; a divergence means the chain builder and the policy
//!   disagree.
//! * **forward progress** — every admitted external request surfaces an
//!   external completion by end of stream (the transaction chains never
//!   strand a terminal).
//! * **policy exclusivity** — a writeback run never writes through, a
//!   writethrough run never evicts dirty victims, and both agree with
//!   the mirror's counter totals.
//!
//! Findings are reported as strings like the cross-run checks in
//! [`crate::diff`]: they have no single offending DRAM command (the
//! protocol oracle owns that layer), and the flat shrinker does not
//! apply to composite-level runs.

use std::collections::BTreeSet;

use sam_memctrl::controller::ControllerConfig;
use sam_memctrl::hybrid::{DramCacheController, HybridConfig, MirrorModel, WritePolicy};
use sam_memctrl::level::MemLevel;

use crate::stream::{DeviceKind, TimedRequest};

/// Outcome of driving one stream through the hybrid controller.
#[derive(Debug, Clone)]
pub struct HybridDiffOutcome {
    /// Policy the run used.
    pub policy: WritePolicy,
    /// External requests admitted and completed.
    pub completions: u64,
    /// The controller's end-of-run summary counters.
    pub hits: u64,
    /// Misses (mirror-checked).
    pub misses: u64,
    /// Cross-layer findings (empty = all held).
    pub findings: Vec<String>,
}

/// Builds the hybrid under test: a small direct-mapped DDR4 cache (few
/// sets, so adversarial streams alias and evict quickly) over the given
/// backing device, with decision logging on for the mirror comparison.
fn hybrid_under_test(
    policy: WritePolicy,
    block_bytes: u64,
    back: DeviceKind,
) -> DramCacheController {
    let mut cfg = HybridConfig::new(block_bytes, policy);
    cfg.capacity_bytes = block_bytes * 16;
    cfg.log_decisions = true;
    DramCacheController::new(ControllerConfig::with_device(back.config()), cfg)
}

/// Drives `requests` (arrival order) through the hybrid controller under
/// `policy`, then replays the same stream through the [`MirrorModel`]
/// and cross-checks every decision and counter.
pub fn run_hybrid_case(
    requests: &[TimedRequest],
    policy: WritePolicy,
    block_bytes: u64,
    back: DeviceKind,
) -> HybridDiffOutcome {
    let mut ctrl = hybrid_under_test(policy, block_bytes, back);
    let mut findings = Vec::new();
    let mut pending: BTreeSet<u64> = BTreeSet::new();
    let mut admitted: Vec<(u64, bool)> = Vec::new();
    let mut completions = 0u64;
    let mut next = 0usize;
    let mut now = 0;
    loop {
        // Admit due requests in stream order while the window has room.
        while next < requests.len()
            && requests[next].arrival <= now
            && ctrl.can_accept(requests[next].req.is_write)
        {
            let t = &requests[next];
            ctrl.enqueue(t.req, now.max(t.arrival))
                .expect("can_accept checked");
            pending.insert(t.req.id);
            admitted.push((t.req.addr, t.req.is_write));
            next += 1;
        }
        match ctrl.schedule_one(now.max(ctrl.clock())) {
            Some(c) => {
                if !pending.remove(&c.id) {
                    findings.push(format!(
                        "external completion {} was never admitted (or completed twice)",
                        c.id
                    ));
                }
                completions += 1;
                now = now.max(c.finish);
            }
            None => {
                // The hybrid is fully idle: every admitted transaction
                // has closed (see the mirror contract), so pending
                // externals here mean a stranded terminal.
                if !pending.is_empty() {
                    findings.push(format!(
                        "hybrid idled with {} admitted externals incomplete",
                        pending.len()
                    ));
                    break;
                }
                match requests.get(next) {
                    Some(t) => {
                        // Idle gap: jump to the next arrival.
                        let target = now.max(t.arrival);
                        ctrl.advance_to(target);
                        now = target;
                    }
                    None => break,
                }
            }
        }
    }

    // Mirror identity: replay the admitted stream through the pure model.
    let mut mirror = MirrorModel::new(ctrl.hybrid_config());
    let decisions = ctrl.decisions();
    if decisions.len() != admitted.len() {
        findings.push(format!(
            "controller logged {} decisions for {} admitted requests",
            decisions.len(),
            admitted.len()
        ));
    }
    for (i, (&(addr, is_write), got)) in admitted.iter().zip(decisions).enumerate() {
        let want = mirror.access(addr, is_write);
        if want != *got {
            findings.push(format!(
                "decision {i} diverged from the mirror: controller {got:?} vs mirror {want:?}"
            ));
        }
    }
    let summary = ctrl.summary();
    for (field, ctrl_n, mirror_n) in [
        ("hits", summary.hits, mirror.hits),
        ("misses", summary.misses, mirror.misses),
        ("fills", summary.fills, mirror.fills),
        (
            "dirty_evictions",
            summary.dirty_evictions,
            mirror.dirty_evictions,
        ),
        ("writethroughs", summary.writethroughs, mirror.writethroughs),
    ] {
        if ctrl_n != mirror_n {
            findings.push(format!(
                "{field}: controller counted {ctrl_n}, mirror counted {mirror_n}"
            ));
        }
    }
    // Policy exclusivity.
    match policy {
        WritePolicy::Writeback if summary.writethroughs != 0 => findings.push(format!(
            "writeback run wrote through {} times",
            summary.writethroughs
        )),
        WritePolicy::Writethrough if summary.dirty_evictions != 0 => findings.push(format!(
            "writethrough run evicted {} dirty victims",
            summary.dirty_evictions
        )),
        _ => {}
    }
    if completions != admitted.len() as u64 {
        findings.push(format!(
            "{} externals admitted but {completions} completed",
            admitted.len()
        ));
    }

    HybridDiffOutcome {
        policy,
        completions,
        hits: summary.hits,
        misses: summary.misses,
        findings,
    }
}

/// The full differential: one stream under both write policies, plus the
/// cross-policy check that a read-only prefix decides identically (write
/// allocation is the only policy-visible state divergence).
pub fn run_hybrid_differential(
    requests: &[TimedRequest],
    block_bytes: u64,
    back: DeviceKind,
) -> Vec<HybridDiffOutcome> {
    let mut outcomes: Vec<HybridDiffOutcome> = [WritePolicy::Writeback, WritePolicy::Writethrough]
        .into_iter()
        .map(|policy| run_hybrid_case(requests, policy, block_bytes, back))
        .collect();
    // Until the first write the two policies' caches hold identical
    // state, so their decision streams must agree on that prefix.
    let reads_prefix = requests.iter().take_while(|t| !t.req.is_write).count();
    let (wb, wt) = (&outcomes[0], &outcomes[1]);
    if reads_prefix > 0 && (wb.hits + wb.misses > 0) && (wt.hits + wt.misses > 0) {
        let wb_first =
            run_prefix_decisions(requests, reads_prefix, block_bytes, WritePolicy::Writeback);
        let wt_first = run_prefix_decisions(
            requests,
            reads_prefix,
            block_bytes,
            WritePolicy::Writethrough,
        );
        if wb_first != wt_first {
            outcomes[1].findings.push(format!(
                "read-only prefix ({reads_prefix} requests) decided differently across policies"
            ));
        }
    }
    outcomes
}

/// Mirror decisions for the first `n` requests under `policy` (pure —
/// the mirror is the arbiter; both cycle-level runs were already checked
/// against it above).
fn run_prefix_decisions(
    requests: &[TimedRequest],
    n: usize,
    block_bytes: u64,
    policy: WritePolicy,
) -> Vec<sam_memctrl::hybrid::HybridDecision> {
    let cfg = {
        let mut c = HybridConfig::new(block_bytes, policy);
        c.capacity_bytes = block_bytes * 16;
        c
    };
    let mut mirror = MirrorModel::new(&cfg);
    requests
        .iter()
        .take(n)
        .map(|t| mirror.access(t.req.addr, t.req.is_write))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, PatternParams};
    use crate::stream::renumber;
    use sam_memctrl::request::MemRequest;

    #[test]
    fn every_pattern_is_clean_under_both_policies() {
        for pattern in Pattern::ALL {
            let stream = pattern.generate(&PatternParams::small(17));
            for out in run_hybrid_differential(&stream, 128, DeviceKind::Rram) {
                assert!(
                    out.findings.is_empty(),
                    "{} ({}): {:?}",
                    pattern.name(),
                    out.policy.label(),
                    out.findings
                );
                assert_eq!(out.completions, stream.len() as u64, "{}", pattern.name());
            }
        }
    }

    #[test]
    fn aliasing_write_stream_exercises_dirty_evictions() {
        // Two blocks mapping to the same set under capacity 16 blocks of
        // 128B: addresses 0 and 16*128 alias.
        let mut v: Vec<TimedRequest> = Vec::new();
        for i in 0..24u64 {
            let addr = (i % 2) * 16 * 128;
            v.push(TimedRequest {
                req: MemRequest::write(0, addr),
                arrival: i * 4,
            });
        }
        renumber(&mut v);
        let outs = run_hybrid_differential(&v, 128, DeviceKind::Rram);
        assert!(outs[0].findings.is_empty(), "{:?}", outs[0].findings);
        assert!(outs[1].findings.is_empty(), "{:?}", outs[1].findings);
        // Writeback ping-pong: every re-miss evicts the dirty sibling.
        assert!(outs[0].misses > 2);
    }

    #[test]
    fn the_mirror_distinguishes_the_policies() {
        // A write-hit decides differently under the two policies (dirty
        // bit vs writethrough), so replaying one policy's stream through
        // the other policy's mirror must diverge — the drift signal
        // `run_hybrid_case`'s per-decision comparison keys on.
        let cfg_of = |policy| {
            let mut c = HybridConfig::new(128, policy);
            c.capacity_bytes = 128 * 16;
            c
        };
        let mut wb = MirrorModel::new(&cfg_of(WritePolicy::Writeback));
        let mut wt = MirrorModel::new(&cfg_of(WritePolicy::Writethrough));
        let stream = [(0u64, true), (8, true)]; // miss-allocate?, then write-hit
        let a: Vec<_> = stream.iter().map(|&(p, w)| wb.access(p, w)).collect();
        let b: Vec<_> = stream.iter().map(|&(p, w)| wt.access(p, w)).collect();
        assert_ne!(a, b);
        assert_eq!(wb.writethroughs, 0);
        assert!(wt.writethroughs > 0);
    }
}

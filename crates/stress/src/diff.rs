//! The differential runner: one stream, many knob settings.
//!
//! Cycle-accurate simulators rarely fail loudly; they fail by drifting.
//! Running the *same* adversarial stream under several configurations
//! and comparing behaviour across runs catches the drift the per-run
//! invariants cannot see:
//!
//! * **starved-count monotonicity** — among runs that differ only in
//!   starvation cap, a smaller cap must force at least as many
//!   starvation decisions as a larger one;
//! * **semantic identity** — runs whose configurations are equal (e.g.
//!   defaults spelled implicitly vs explicitly) must produce
//!   byte-identical stats digests.
//!
//! Cross-run findings are reported as strings rather than
//! [`crate::invariant::Violation`]s: they have no single offending
//! request or cycle, and the shrinker operates on per-run violations
//! only.

use crate::driver::{run_stream, StressOutcome};
use crate::stream::{StressConfig, TimedRequest};

/// One configuration to run the stream under.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffCase {
    /// Display label (unique within a differential run).
    pub label: String,
    /// The knobs.
    pub config: StressConfig,
}

/// One case's result.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRun {
    /// The case that produced it.
    pub case: DiffCase,
    /// Measurements and per-run violations.
    pub outcome: StressOutcome,
}

/// All cases' results plus the cross-run findings.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-case results, in case order.
    pub runs: Vec<DiffRun>,
    /// Cross-run invariant failures (empty = all held).
    pub cross_findings: Vec<String>,
}

impl DiffReport {
    /// Total violations across runs plus cross-run findings.
    pub fn total_violations(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.outcome.violations.len())
            .sum::<usize>()
            + self.cross_findings.len()
    }
}

/// Runs `requests` under every case and applies the cross-run checks.
pub fn run_differential(requests: &[TimedRequest], cases: &[DiffCase]) -> DiffReport {
    let runs: Vec<DiffRun> = cases
        .iter()
        .map(|case| DiffRun {
            case: case.clone(),
            outcome: run_stream(&case.config, requests),
        })
        .collect();
    let cross_findings = cross_check(&runs);
    DiffReport {
        runs,
        cross_findings,
    }
}

/// The cross-run checks, separated for reuse on precomputed runs (the
/// bench harness runs cases through its own sweep workers).
pub fn cross_check(runs: &[DiffRun]) -> Vec<String> {
    let mut findings = Vec::new();
    // Monotonicity: group runs equal in everything but the cap.
    for (i, a) in runs.iter().enumerate() {
        for b in runs.iter().skip(i + 1) {
            let (ca, cb) = (&a.case.config, &b.case.config);
            let same_but_cap =
                ca.device == cb.device && ca.drain_hi == cb.drain_hi && ca.drain_lo == cb.drain_lo;
            if same_but_cap && ca.starvation_cap != cb.starvation_cap {
                let (small, large) = if ca.starvation_cap < cb.starvation_cap {
                    (a, b)
                } else {
                    (b, a)
                };
                if small.outcome.starved < large.outcome.starved {
                    findings.push(format!(
                        "starved-count not monotone vs cap: '{}' (cap {}) forced {} < '{}' \
                         (cap {}) forced {}",
                        small.case.label,
                        small.case.config.starvation_cap,
                        small.outcome.starved,
                        large.case.label,
                        large.case.config.starvation_cap,
                        large.outcome.starved
                    ));
                }
            }
            // Semantic identity: equal configs, equal bytes.
            if ca == cb && a.outcome.stats_digest() != b.outcome.stats_digest() {
                findings.push(format!(
                    "equal configs diverged: '{}' vs '{}': {} != {}",
                    a.case.label,
                    b.case.label,
                    a.outcome.stats_digest(),
                    b.outcome.stats_digest()
                ));
            }
            // Scheduler-path identity: the group tournament and the naive
            // reference scan are exact equivalents, so runs that differ
            // *only* in the scheduler implementation must be
            // byte-identical in both the stats digest and the per-core
            // lanes. This is the wheel-vs-reference differential.
            let same_but_sched = ca.device == cb.device
                && ca.starvation_cap == cb.starvation_cap
                && ca.drain_hi == cb.drain_hi
                && ca.drain_lo == cb.drain_lo
                && ca.reference_scheduler != cb.reference_scheduler;
            if same_but_sched {
                if a.outcome.stats_digest() != b.outcome.stats_digest() {
                    findings.push(format!(
                        "scheduler paths diverged: '{}' vs '{}': {} != {}",
                        a.case.label,
                        b.case.label,
                        a.outcome.stats_digest(),
                        b.outcome.stats_digest()
                    ));
                }
                if a.outcome.lanes_digest != b.outcome.lanes_digest {
                    findings.push(format!(
                        "scheduler paths diverged in per-core lanes: '{}' vs '{}': {} != {}",
                        a.case.label, b.case.label, a.outcome.lanes_digest, b.outcome.lanes_digest
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, PatternParams};
    use crate::stream::DeviceKind;

    fn cases() -> Vec<DiffCase> {
        let mk = |label: &str, cap: u64| DiffCase {
            label: label.into(),
            config: StressConfig::new(DeviceKind::Ddr4, cap, 28, 8).unwrap(),
        };
        vec![
            mk("fcfs", 0),
            mk("tight", 256),
            mk("default", 4096),
            DiffCase {
                label: "default-explicit".into(),
                config: StressConfig::ddr4_default(),
            },
            DiffCase {
                label: "default-reference-sched".into(),
                config: StressConfig::ddr4_default().with_reference_scheduler(),
            },
        ]
    }

    #[test]
    fn flood_is_clean_and_monotone_across_caps() {
        let stream = Pattern::RowHitFlood.generate(&PatternParams::small(11));
        let report = run_differential(&stream, &cases());
        assert_eq!(report.total_violations(), 0, "{:?}", report.cross_findings);
        // The tight cap really does fire more often than the default.
        let starved: Vec<u64> = report.runs.iter().map(|r| r.outcome.starved).collect();
        assert!(starved[1] >= starved[2], "{starved:?}");
    }

    #[test]
    fn all_patterns_clean_under_default_knobs() {
        for pattern in Pattern::ALL {
            let stream = pattern.generate(&PatternParams::small(3));
            let report = run_differential(&stream, &cases());
            assert_eq!(
                report.total_violations(),
                0,
                "{}: {:?} / {:?}",
                pattern.name(),
                report.cross_findings,
                report
                    .runs
                    .iter()
                    .flat_map(|r| &r.outcome.violations)
                    .collect::<Vec<_>>()
            );
        }
    }

    /// Satellite: recorded streams — rendered to the on-disk trace
    /// format and parsed back, exactly what `sam-check replay` does —
    /// replayed through the reference scan and the tournament produce
    /// identical stats digests, per-core lanes, and completion cycles.
    #[test]
    fn recorded_streams_replay_identically_under_both_schedulers() {
        use crate::stream::{format_stream, parse_stream, StressStream};
        for pattern in Pattern::ALL {
            let requests = pattern.generate(&PatternParams::small(7));
            let recorded = format_stream(&StressStream {
                config: StressConfig::ddr4_default(),
                requests,
            });
            let replayed = parse_stream(&recorded).unwrap();
            let tournament = run_stream(&replayed.config, &replayed.requests);
            let reference = run_stream(
                &replayed.config.with_reference_scheduler(),
                &replayed.requests,
            );
            assert_eq!(
                tournament.stats_digest(),
                reference.stats_digest(),
                "{}: scheduler paths must not diverge",
                pattern.name()
            );
            assert_eq!(
                tournament.lanes_digest,
                reference.lanes_digest,
                "{}",
                pattern.name()
            );
            assert_eq!(
                tournament.last_finish,
                reference.last_finish,
                "{}",
                pattern.name()
            );
            assert_eq!(tournament, reference, "{}", pattern.name());
        }
    }

    #[test]
    fn scheduler_divergence_is_reported() {
        let stream = Pattern::RowHitFlood.generate(&PatternParams::small(9));
        let mut report = run_differential(&stream, &cases());
        // Forge a desync between the tournament and reference runs.
        let idx = report
            .runs
            .iter()
            .position(|r| r.case.config.reference_scheduler)
            .expect("matrix includes a reference-scheduler case");
        report.runs[idx].outcome.row_hits += 1;
        report.runs[idx].outcome.lanes_digest.push('!');
        let findings = cross_check(&report.runs);
        assert!(
            findings
                .iter()
                .any(|f| f.contains("scheduler paths diverged")),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.contains("diverged in per-core lanes")),
            "{findings:?}"
        );
    }

    #[test]
    fn forged_divergence_is_reported() {
        let stream = Pattern::BankPingPong.generate(&PatternParams::small(5));
        let mut report = run_differential(&stream, &cases());
        // Forge a desync between the two equal-config runs.
        report.runs[3].outcome.completions += 1;
        let findings = cross_check(&report.runs);
        assert!(
            findings
                .iter()
                .any(|f| f.contains("equal configs diverged")),
            "{findings:?}"
        );
    }
}

//! Adversarial stress engine for the SAM memory system.
//!
//! `sam-check` verifies that every DRAM command is *legal*; this crate
//! verifies that the scheduler's *behaviour* is sane under workloads
//! built to hurt it. Three pieces compose:
//!
//! 1. [`pattern`] — seeded, deterministic generators for named attack
//!    patterns (row-hit floods, bank ping-pong, watermark-oscillating
//!    write bursts, tFAW trains, sector-straddling stride sweeps).
//! 2. [`driver`] + [`diff`] — a mirrored front-end that executes a
//!    stream against the real controller while checking behavioural
//!    invariants ([`invariant`]), and a differential runner comparing
//!    the same stream across knob settings (cap monotonicity, semantic
//!    identity).
//! 3. [`shrink`] — a greedy delta-debugging pass that reduces any
//!    failing stream to a 1-minimal replayable repro in the [`stream`]
//!    text format, which `sam-check replay` autodetects by header.
//!
//! [`hybriddiff`] runs the differential idea across *model layers*
//! instead of knob settings: every pattern stream through the DRAM-cache
//! hybrid topology, cross-checked against its pure functional mirror
//! (the `stress --hybrid-diff` mode).
//!
//! The `stress` binary in `sam-bench` fronts all of it; [`report`]
//! defines its `results/stress.json` schema and linter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod driver;
pub mod hybriddiff;
pub mod invariant;
pub mod pattern;
pub mod report;
pub mod shrink;
pub mod stream;

pub use diff::{run_differential, DiffCase, DiffReport, DiffRun};
pub use driver::{read_residency_bound, run_stream, StressOutcome};
pub use hybriddiff::{run_hybrid_case, run_hybrid_differential, HybridDiffOutcome};
pub use invariant::{InvariantKind, Violation};
pub use pattern::{Pattern, PatternParams};
pub use report::{json_report, lint_stress_json, PatternReport, StressJsonSummary};
pub use shrink::{first_violation, shrink_stream, violates};
pub use stream::{
    format_stream, is_stress_trace, parse_stream, renumber, DeviceKind, StressConfig, StressStream,
    TimedRequest, STRESS_TRACE_HEADER,
};

/// Replays a stress trace (text form), returning the config it declares
/// and the outcome of executing it — violations included. This is what
/// `sam-check replay` calls after header autodetection, so a minimal
/// repro written by the shrinker reproduces its violation anywhere.
///
/// # Errors
///
/// Returns parse errors verbatim; executing a parsed stream cannot fail.
pub fn replay_text(text: &str) -> Result<(StressConfig, StressOutcome), String> {
    let stream = parse_stream(text)?;
    let outcome = run_stream(&stream.config, &stream.requests);
    Ok((stream.config, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrunk_repro_replays_to_the_same_violation_through_text() {
        let cfg = StressConfig::unchecked(DeviceKind::Ddr4, 4096, 8, 28);
        let stream = Pattern::WriteBurst.generate(&PatternParams::small(23));
        let minimal = shrink_stream(&cfg, &stream, InvariantKind::WatermarkSupremacy);
        let text = format_stream(&minimal);
        assert!(is_stress_trace(&text));
        let (parsed_cfg, outcome) = replay_text(&text).unwrap();
        assert_eq!(parsed_cfg, cfg);
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.kind == InvariantKind::WatermarkSupremacy));
    }
}

//! Arrival-ordered stream execution with invariant checking.
//!
//! The driver is a minimal front-end around the real
//! [`sam_memctrl::controller::Controller`]: it admits requests strictly
//! in stream order once their arrival cycle is due and the target queue
//! has space, interleaving scheduling decisions exactly like the system
//! engine does (`now` advances to each completion's finish). Alongside
//! the controller it keeps a *mirror* of queue membership built purely
//! from its own enqueue/completion events; every scheduling decision is
//! then judged against the mirror:
//!
//! * the watermark-supremacy check compares the mirrored write-queue
//!   depth at decision time with what got served,
//! * the read-residency check compares each read's completion against
//!   [`read_residency_bound`],
//! * the mirror's oldest-pending age is cross-checked against the
//!   controller's own forward-progress probe
//!   ([`sam_memctrl::controller::Controller::oldest_pending_age`]) —
//!   a divergence means the mirror and the controller disagree about
//!   what is queued, which would invalidate the other checks.
//!
//! Residency is measured from *admission* (when the driver hands the
//! request to the controller), not nominal arrival: a stream may dump
//! thousands of requests on one cycle, and time spent blocked behind a
//! full queue is front-end back-pressure, not scheduler unfairness.

use std::collections::BTreeMap;

use sam_dram::Cycle;
use sam_memctrl::controller::{Controller, ControllerConfig};
use sam_trace::{SharedEpochs, SharedSink};

use crate::invariant::{InvariantKind, Violation};
use crate::stream::{StressConfig, TimedRequest};

/// Everything measured about one stream execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StressOutcome {
    /// Requests admitted and completed.
    pub completions: u64,
    /// Completed reads (regular + stride + narrow).
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Row-buffer hits among completions.
    pub row_hits: u64,
    /// Scheduling decisions forced by the starvation cap.
    pub starved: u64,
    /// Refreshes issued.
    pub refreshes: u64,
    /// Largest observed read residency (finish - admission).
    pub max_read_residency: Cycle,
    /// The residency bound the run was checked against.
    pub residency_bound: Cycle,
    /// Cycle the last completion finished.
    pub last_finish: Cycle,
    /// Invariant violations, in observation order.
    pub violations: Vec<Violation>,
    /// Canonical rendering of the controller's per-core provenance
    /// lanes; the scheduler differential compares it across paths.
    pub lanes_digest: String,
}

impl StressOutcome {
    /// Canonical one-line stats rendering; the differential runner's
    /// "semantically equal configs" check compares these byte-for-byte.
    pub fn stats_digest(&self) -> String {
        format!(
            "completions={} reads={} writes={} row_hits={} starved={} refreshes={} \
             max_read_residency={} last_finish={} violations={}",
            self.completions,
            self.reads,
            self.writes,
            self.row_hits,
            self.starved,
            self.refreshes,
            self.max_read_residency,
            self.last_finish,
            self.violations.len()
        )
    }
}

/// Upper bound on one read's queue residency under `cfg`, given that the
/// stream contains `stream_writes` writes in total.
///
/// Derivation: once a read's age crosses the starvation cap it wins
/// every read-serving decision against at most a read-queue's worth of
/// older reads; what can delay read service is write drain, and a drain
/// only persists while admitted writes keep the queue above the low
/// watermark — bounded by the stream's total write count, not the queue
/// depth. Each serviced request costs at most one precharge + activate +
/// column access + recovery (`svc` below, summed generously so RRAM's
/// slow writes and tFAW stalls are covered), and refresh steals at most
/// `rfc` per rank per `refi` window. The bound is deliberately loose —
/// it must never fire on a correct scheduler — but finite, so schedulers
/// that lose forward progress or let row hits starve a capped read
/// still trip it.
pub fn read_residency_bound(cfg: &ControllerConfig, stream_writes: u64) -> Cycle {
    let t = &cfg.device.timing;
    let svc =
        t.rp + t.rcd + t.cl + t.cwl + t.burst + t.wr + t.rtr + t.wtw + t.ccd_l + t.rrd_l + t.faw;
    let backlog = (cfg.read_queue_capacity + 4) as u64 + stream_writes;
    let busy = cfg
        .starvation_cap
        .saturating_add(backlog.saturating_mul(svc));
    let refresh = if cfg.refresh_enabled {
        (busy / t.refi + 2) * cfg.device.ranks as u64 * t.rfc
    } else {
        0
    };
    busy.saturating_add(refresh)
}

/// Executes `requests` (arrival order, positional ids) under `cfg`,
/// checking every invariant. Plain, uninstrumented entry point.
pub fn run_stream(cfg: &StressConfig, requests: &[TimedRequest]) -> StressOutcome {
    run_stream_instrumented(cfg, requests, None, None)
}

/// [`run_stream`] with optional `sam-trace` recorders attached to the
/// controller (the `stress --trace` path). The sinks are purely
/// observational: attaching them must not change the outcome.
pub fn run_stream_instrumented(
    cfg: &StressConfig,
    requests: &[TimedRequest],
    trace: Option<SharedSink>,
    epochs: Option<SharedEpochs>,
) -> StressOutcome {
    let mut ctrl = Controller::new(cfg.controller_config());
    if let Some(sink) = trace {
        ctrl.attach_trace(sink);
    }
    if let Some(ep) = epochs {
        ctrl.attach_epochs(ep);
    }
    let stream_writes = requests.iter().filter(|t| t.req.is_write).count() as u64;
    let bound = read_residency_bound(ctrl.config(), stream_writes);
    let hi = cfg.drain_hi;

    // id -> (is_write, admission cycle); the driver-side queue mirror.
    let mut mirror: BTreeMap<u64, (bool, Cycle)> = BTreeMap::new();
    let mut mirror_reads = 0usize;
    let mut mirror_writes = 0usize;

    let mut out = StressOutcome {
        completions: 0,
        reads: 0,
        writes: 0,
        row_hits: 0,
        starved: 0,
        refreshes: 0,
        max_read_residency: 0,
        residency_bound: bound,
        last_finish: 0,
        violations: Vec::new(),
        lanes_digest: String::new(),
    };

    let mut next = 0usize;
    let mut now: Cycle = 0;
    loop {
        // Admit due requests in stream order while the queues have room.
        while next < requests.len() && requests[next].arrival <= now {
            let t = &requests[next];
            if !ctrl.can_accept(t.req.is_write) {
                break;
            }
            let admitted = now.max(t.arrival);
            ctrl.enqueue(t.req, admitted).expect("can_accept checked");
            mirror.insert(t.req.id, (t.req.is_write, admitted));
            if t.req.is_write {
                mirror_writes += 1;
            } else {
                mirror_reads += 1;
            }
            next += 1;
        }
        if ctrl.queued() == 0 {
            match requests.get(next) {
                Some(t) => {
                    // Event-driven idle jump (DESIGN.md §13): consume
                    // the controller's wheel wakes across the gap —
                    // refreshes issue at their original due cycles —
                    // then land directly on the next arrival. Purely a
                    // matter of *when* background work is performed:
                    // the lazy catch-up inside scheduling issues the
                    // identical commands at the identical cycles.
                    let target = now.max(t.arrival);
                    ctrl.advance_to(target);
                    now = target;
                    continue;
                }
                None => break,
            }
        }

        // Cross-check the forward-progress probe against the mirror
        // before the decision mutates both.
        let probe = ctrl.oldest_pending_age(now);
        let mirror_oldest = mirror
            .values()
            .map(|&(_, adm)| now.saturating_sub(adm))
            .max();
        if probe != mirror_oldest {
            out.violations.push(Violation {
                kind: InvariantKind::ForwardProgress,
                request_id: u64::MAX,
                at: now,
                detail: format!(
                    "controller probe {probe:?} disagrees with driver mirror {mirror_oldest:?}"
                ),
            });
            break;
        }

        let writes_before = mirror_writes;
        let reads_before = mirror_reads;
        let Some(c) = ctrl.schedule_one(now) else {
            out.violations.push(Violation {
                kind: InvariantKind::ForwardProgress,
                request_id: u64::MAX,
                at: now,
                detail: format!(
                    "scheduler idled with {reads_before} reads and {writes_before} writes queued"
                ),
            });
            break;
        };
        let (is_write, admitted) = mirror
            .remove(&c.id)
            .expect("completion for a request the driver admitted");
        if is_write {
            mirror_writes -= 1;
            out.writes += 1;
        } else {
            mirror_reads -= 1;
            out.reads += 1;
        }
        out.completions += 1;
        out.row_hits += u64::from(c.row_hit);
        out.last_finish = out.last_finish.max(c.finish);

        if !is_write && reads_before > 0 && writes_before >= hi {
            out.violations.push(Violation {
                kind: InvariantKind::WatermarkSupremacy,
                request_id: c.id,
                at: c.issue,
                detail: format!(
                    "read served with write queue at {writes_before}/{hi} (hi) and \
                     {reads_before} reads queued"
                ),
            });
        }
        if !is_write {
            let residency = c.finish.saturating_sub(admitted);
            out.max_read_residency = out.max_read_residency.max(residency);
            if residency > bound {
                out.violations.push(Violation {
                    kind: InvariantKind::ReadResidencyBound,
                    request_id: c.id,
                    at: c.finish,
                    detail: format!("read residency {residency} exceeds bound {bound}"),
                });
            }
        }
        now = now.max(c.finish);
    }

    if !mirror.is_empty() {
        let mut stuck: Vec<u64> = mirror.keys().copied().collect();
        stuck.sort_unstable();
        out.violations.push(Violation {
            kind: InvariantKind::ForwardProgress,
            request_id: stuck[0],
            at: now,
            detail: format!("{} admitted requests never completed", stuck.len()),
        });
    }

    out.starved = ctrl.stats().starvation_forced;
    out.refreshes = ctrl.stats().refreshes;

    // Lane conservation: the provenance lanes must telescope to the
    // aggregate counters exactly, on every stream, tagged or not.
    let lanes = ctrl.per_core().total();
    let stats = ctrl.stats();
    let mismatches: Vec<String> = [
        ("row_hits", lanes.row_hits, stats.row_hits),
        ("row_misses", lanes.row_misses, stats.row_misses),
        ("row_conflicts", lanes.row_conflicts, stats.row_conflicts),
        ("reads_done", lanes.reads_done, stats.reads_done),
        ("writes_done", lanes.writes_done, stats.writes_done),
        ("total_latency", lanes.total_latency, stats.total_latency),
        ("starved", lanes.starvation_forced, stats.starvation_forced),
    ]
    .iter()
    .filter(|(_, lane, agg)| lane != agg)
    .map(|(field, lane, agg)| format!("{field}: lanes {lane} vs aggregate {agg}"))
    .collect();
    if !mismatches.is_empty() {
        out.violations.push(Violation {
            kind: InvariantKind::LaneConservation,
            request_id: u64::MAX,
            at: now,
            detail: mismatches.join(", "),
        });
    }
    out.lanes_digest = lanes_digest(ctrl.per_core());

    ctrl.finish_epochs(now);
    out
}

/// Deterministic one-line rendering of the per-core lane totals, so two
/// runs' lanes can be compared byte-for-byte like [`StressOutcome::stats_digest`].
fn lanes_digest(lanes: &sam_memctrl::controller::CoreLanes) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for core in 0..lanes.cores() {
        let t = lanes.core_total(core as u8);
        let _ = write!(
            s,
            "core{core}[hits={} misses={} conflicts={} reads={} writes={} latency={} starved={}] ",
            t.row_hits,
            t.row_misses,
            t.row_conflicts,
            t.reads_done,
            t.writes_done,
            t.total_latency,
            t.starvation_forced
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{renumber, DeviceKind};
    use sam_memctrl::request::MemRequest;

    fn reads(n: usize, spacing: Cycle) -> Vec<TimedRequest> {
        let mut v: Vec<TimedRequest> = (0..n)
            .map(|i| TimedRequest {
                req: MemRequest::read(0, (i as u64 % 128) * 64),
                arrival: i as Cycle * spacing,
            })
            .collect();
        renumber(&mut v);
        v
    }

    #[test]
    fn clean_stream_has_no_violations() {
        let out = run_stream(&StressConfig::ddr4_default(), &reads(256, 4));
        assert_eq!(out.completions, 256);
        assert_eq!(out.reads, 256);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.max_read_residency <= out.residency_bound);
    }

    #[test]
    fn inverted_margins_violate_watermark_supremacy() {
        // lo=28 >= hi=8: the drain latch sets at 8 queued writes and
        // immediately resets (len <= lo), so reads keep being served
        // over a brim-full write queue.
        let cfg = StressConfig::unchecked(DeviceKind::Ddr4, 4096, 8, 28);
        let mut v: Vec<TimedRequest> = (0..12)
            .map(|i| TimedRequest {
                req: MemRequest::write(0, i * 0x2000),
                arrival: 0,
            })
            .collect();
        for i in 0..4u64 {
            v.push(TimedRequest {
                req: MemRequest::read(0, 0x40 * i),
                arrival: 1,
            });
        }
        renumber(&mut v);
        let out = run_stream(&cfg, &v);
        assert!(
            out.violations
                .iter()
                .any(|x| x.kind == InvariantKind::WatermarkSupremacy),
            "expected a WatermarkSupremacy violation: {:?}",
            out.violations
        );
        // The same stream under valid margins is clean.
        let ok = run_stream(&StressConfig::ddr4_default(), &v);
        assert!(ok.violations.is_empty(), "{:?}", ok.violations);
    }

    #[test]
    fn equal_configs_digest_identically() {
        let v = reads(128, 2);
        let a = run_stream(&StressConfig::ddr4_default(), &v);
        let explicit = StressConfig::new(DeviceKind::Ddr4, 4096, 28, 8).unwrap();
        let b = run_stream(&explicit, &v);
        assert_eq!(a.stats_digest(), b.stats_digest());
        assert_eq!(a, b);
    }

    #[test]
    fn instrumented_run_matches_plain() {
        use std::sync::{Arc, Mutex};
        let v = reads(64, 3);
        let cfg = StressConfig::ddr4_default();
        let plain = run_stream(&cfg, &v);
        let ring = Arc::new(Mutex::new(sam_trace::RingRecorder::new(1 << 12)));
        let epochs = Arc::new(Mutex::new(sam_trace::EpochRecorder::new(1_000)));
        let traced = run_stream_instrumented(&cfg, &v, Some(ring.clone()), Some(epochs.clone()));
        assert_eq!(plain, traced);
        let (events, _) = Arc::try_unwrap(ring)
            .unwrap()
            .into_inner()
            .unwrap()
            .into_events();
        assert!(!events.is_empty());
    }

    #[test]
    fn rram_default_margins_are_clean_too() {
        let cfg = StressConfig::new(DeviceKind::Rram, 4096, 28, 8).unwrap();
        let out = run_stream(&cfg, &reads(64, 8));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.refreshes, 0, "RRAM does not refresh");
    }
}

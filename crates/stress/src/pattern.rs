//! Seeded adversarial stream generators: the named attack patterns.
//!
//! Every generator is a pure function of its [`PatternParams`] (no
//! clocks, no global state — `Date`-free by construction), so a seed in
//! a CI log reproduces the exact stream. Addresses are built from the
//! `rw:rk:bk:ch:cl:offset` mapping the controller uses: one row of one
//! bank spans 8KB (128 cachelines), adjacent banks sit 8KB apart, and
//! `0` vs `CONFLICT_ROW` are two rows of the *same physical bank* (the
//! +8KB term compensates the XOR bank permutation), which is what makes
//! row-hit floods and ping-pong storms land where they are aimed.

use sam_dram::Cycle;
use sam_memctrl::request::{MemRequest, StrideSpec};
use sam_util::rng::Xoshiro256StarStar;

use crate::stream::{renumber, TimedRequest};

/// One 64B cacheline.
pub const LINE: u64 = 64;
/// One row of one bank: 128 cachelines.
pub const ROW_SPAN: u64 = 8 * 1024;
/// Adjacent-bank stride under the `rw:rk:bk:ch:cl:offset` mapping.
pub const BANK_STRIDE: u64 = 8 * 1024;
/// Row 1 of the same physical bank as address 0 (the +8KB compensates
/// the XOR bank permutation; same idiom as the controller's own tests).
pub const CONFLICT_ROW: u64 = 256 * 1024 + 8 * 1024;

/// The named attack patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// An unbroken stream of row hits to one open row, with a lone
    /// victim read to another row of the same bank: pure FR-FCFS would
    /// starve the victim forever; the starvation cap must bound it.
    RowHitFlood,
    /// Alternating reads to two rows of the same bank: every access
    /// conflicts, maximising PRE/ACT churn and queue pressure.
    BankPingPong,
    /// Write bursts sized to cross the drain high watermark, followed by
    /// read windows that let the queue fall below the low watermark —
    /// oscillating the hysteresis latch as fast as it can go.
    WriteBurst,
    /// Groups of activates to four-plus distinct banks arriving
    /// together, saturating the tFAW rolling window.
    FawTrain,
    /// Strided gathers, narrow sub-ranked bursts, and regular lines
    /// interleaved across SAM's 16B sector boundaries, forcing I/O
    /// mode-register churn.
    SectorStraddle,
}

impl Pattern {
    /// All patterns, in catalogue order.
    pub const ALL: [Pattern; 5] = [
        Pattern::RowHitFlood,
        Pattern::BankPingPong,
        Pattern::WriteBurst,
        Pattern::FawTrain,
        Pattern::SectorStraddle,
    ];

    /// Stable kebab-case name (CLI panel token).
    pub fn name(self) -> &'static str {
        match self {
            Pattern::RowHitFlood => "row-hit-flood",
            Pattern::BankPingPong => "ping-pong",
            Pattern::WriteBurst => "write-burst",
            Pattern::FawTrain => "faw-train",
            Pattern::SectorStraddle => "sector-straddle",
        }
    }

    /// Parses a panel token.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Generates the stream for this pattern.
    pub fn generate(self, params: &PatternParams) -> Vec<TimedRequest> {
        let mut rng = Xoshiro256StarStar::new(params.seed ^ self as u64);
        let mut clock = DutyClock::new(params);
        let mut out = match self {
            Pattern::RowHitFlood => row_hit_flood(params, &mut clock, &mut rng),
            Pattern::BankPingPong => ping_pong(params, &mut clock, &mut rng),
            Pattern::WriteBurst => write_burst(params, &mut clock, &mut rng),
            Pattern::FawTrain => faw_train(params, &mut clock, &mut rng),
            Pattern::SectorStraddle => sector_straddle(params, &mut clock, &mut rng),
        };
        renumber(&mut out);
        out
    }
}

/// Generator knobs shared by every pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternParams {
    /// RNG seed (xor-folded with the pattern discriminant).
    pub seed: u64,
    /// Total requests to emit.
    pub len: usize,
    /// Inter-arrival gap within a duty burst, in cycles (intensity).
    pub gap: Cycle,
    /// Requests per duty burst.
    pub burst: usize,
    /// Idle cycles inserted between duty bursts (duty cycle).
    pub idle: Cycle,
    /// Victim address for patterns that aim at one (the flood's starved
    /// read); other patterns ignore it.
    pub victim_addr: u64,
}

impl Default for PatternParams {
    fn default() -> Self {
        Self {
            seed: 0x5a4d_57ab,
            len: 2048,
            gap: 4,
            burst: 64,
            idle: 256,
            victim_addr: CONFLICT_ROW,
        }
    }
}

impl PatternParams {
    /// Params scaled down for smokes and shrinking experiments.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            len: 512,
            ..Self::default()
        }
    }
}

/// Emits arrival cycles with the duty cycle applied: `burst` requests at
/// `gap` spacing, then an `idle` hole.
struct DutyClock {
    t: Cycle,
    gap: Cycle,
    burst: usize,
    idle: Cycle,
    emitted: usize,
}

impl DutyClock {
    fn new(p: &PatternParams) -> Self {
        Self {
            t: 0,
            gap: p.gap,
            burst: p.burst.max(1),
            idle: p.idle,
            emitted: 0,
        }
    }

    fn tick(&mut self) -> Cycle {
        let arrival = self.t;
        self.emitted += 1;
        self.t += self.gap;
        if self.emitted.is_multiple_of(self.burst) {
            self.t += self.idle;
        }
        arrival
    }
}

fn row_hit_flood(
    p: &PatternParams,
    clock: &mut DutyClock,
    rng: &mut Xoshiro256StarStar,
) -> Vec<TimedRequest> {
    let mut out = Vec::with_capacity(p.len);
    // The victim lands early, after the aggressor row is already open.
    let victim_at = (p.len / 16).max(1);
    for i in 0..p.len {
        let arrival = clock.tick();
        if i == victim_at {
            out.push(TimedRequest {
                req: MemRequest::read(0, p.victim_addr),
                arrival,
            });
            continue;
        }
        // Hits to the open aggressor row, random column.
        let col = rng.next_below(128);
        out.push(TimedRequest {
            req: MemRequest::read(0, col * LINE),
            arrival,
        });
    }
    out
}

fn ping_pong(
    p: &PatternParams,
    clock: &mut DutyClock,
    rng: &mut Xoshiro256StarStar,
) -> Vec<TimedRequest> {
    (0..p.len)
        .map(|i| {
            let row = if i % 2 == 0 { 0 } else { CONFLICT_ROW };
            let col = rng.next_below(128);
            TimedRequest {
                req: MemRequest::read(0, row + col * LINE),
                arrival: clock.tick(),
            }
        })
        .collect()
}

fn write_burst(
    p: &PatternParams,
    clock: &mut DutyClock,
    rng: &mut Xoshiro256StarStar,
) -> Vec<TimedRequest> {
    // Alternate write trains (sized past the high watermark) with read
    // windows long enough for the drain to fall below the low watermark:
    // each period latches the hysteresis once and unlatches it once.
    let mut out = Vec::with_capacity(p.len);
    let mut i = 0usize;
    while out.len() < p.len {
        let phase = i % 2;
        let span = if phase == 0 { 30 } else { 32 };
        for j in 0..span {
            if out.len() >= p.len {
                break;
            }
            let arrival = clock.tick();
            let req = if phase == 0 {
                let col = rng.next_below(128);
                MemRequest::write(0, BANK_STRIDE + col * LINE)
            } else {
                let col = rng.next_below(128);
                MemRequest::read(0, (j as u64 % 2) * (2 * BANK_STRIDE) + col * LINE)
            };
            out.push(TimedRequest { req, arrival });
        }
        i += 1;
    }
    out
}

fn faw_train(
    p: &PatternParams,
    clock: &mut DutyClock,
    rng: &mut Xoshiro256StarStar,
) -> Vec<TimedRequest> {
    // Five activates per group (one beyond the window), each to a
    // distinct bank, alternating row regions so every access is a miss.
    let mut out = Vec::with_capacity(p.len);
    let mut group = 0u64;
    while out.len() < p.len {
        let region = (group % 2) * (512 * 1024);
        let arrival = clock.tick();
        for k in 0..5u64 {
            if out.len() >= p.len {
                break;
            }
            let col = rng.next_below(32);
            out.push(TimedRequest {
                req: MemRequest::read(0, region + k * BANK_STRIDE + col * LINE),
                arrival,
            });
        }
        group += 1;
    }
    out
}

fn sector_straddle(
    p: &PatternParams,
    clock: &mut DutyClock,
    rng: &mut Xoshiro256StarStar,
) -> Vec<TimedRequest> {
    // Gathers walk rows in 8-line strides; between them, narrow 16B
    // bursts and regular lines touch offsets that straddle the sector
    // grid, and the mode flips force MRS churn.
    (0..p.len)
        .map(|i| {
            let arrival = clock.tick();
            let req = match i % 4 {
                0 | 1 => {
                    let base = (i as u64 / 4) * 8 * LINE;
                    MemRequest::stride_read(0, base % (4 * ROW_SPAN), StrideSpec::ssc_dsd())
                }
                2 => {
                    let off = rng.next_below(4) * 16;
                    MemRequest::narrow_read(0, CONFLICT_ROW + (i as u64 % 128) * LINE + off)
                }
                _ => {
                    let col = rng.next_below(128);
                    MemRequest::read(0, 2 * BANK_STRIDE + col * LINE)
                }
            };
            TimedRequest { req, arrival }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sized() {
        let p = PatternParams::default();
        for pat in Pattern::ALL {
            let a = pat.generate(&p);
            let b = pat.generate(&p);
            assert_eq!(a, b, "{} not deterministic", pat.name());
            assert_eq!(a.len(), p.len, "{} wrong length", pat.name());
            // Arrival order is non-decreasing and ids positional.
            for (i, w) in a.windows(2).enumerate() {
                assert!(w[0].arrival <= w[1].arrival, "{} arrivals", pat.name());
                assert_eq!(w[0].req.id, i as u64);
            }
        }
    }

    #[test]
    fn seeds_change_streams() {
        let a = Pattern::RowHitFlood.generate(&PatternParams::default());
        let b = Pattern::RowHitFlood.generate(&PatternParams {
            seed: 99,
            ..PatternParams::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn names_roundtrip() {
        for pat in Pattern::ALL {
            assert_eq!(Pattern::from_name(pat.name()), Some(pat));
        }
        assert_eq!(Pattern::from_name("nope"), None);
    }

    #[test]
    fn flood_contains_exactly_one_victim() {
        let p = PatternParams::default();
        let stream = Pattern::RowHitFlood.generate(&p);
        let victims = stream
            .iter()
            .filter(|t| t.req.addr == p.victim_addr)
            .count();
        assert_eq!(victims, 1);
    }

    #[test]
    fn write_burst_mixes_both_kinds() {
        let stream = Pattern::WriteBurst.generate(&PatternParams::default());
        let writes = stream.iter().filter(|t| t.req.is_write).count();
        assert!(writes > 0 && writes < stream.len());
    }
}

//! `results/stress.json`: emission and strict linting.
//!
//! The stress binary has its own schema, distinct from the figure
//! binaries' `MetricsReport` (`sam-check lint-json` dispatches on the
//! top-level `"bin"` value). Like the figure reports, the document is
//! independent of `--jobs` — worker count is execution detail, not
//! result — so the bytes double as the determinism oracle for the
//! `--jobs 4` vs `--jobs 1` identity test.

use sam_util::json::Json;

use crate::diff::DiffReport;

/// One named pattern's differential report, as assembled by the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternReport {
    /// Pattern name (`row-hit-flood`, ...).
    pub pattern: String,
    /// The differential results across all cases.
    pub report: DiffReport,
}

fn run_json(run: &crate::diff::DiffRun) -> Json {
    let c = &run.case.config;
    let o = &run.outcome;
    Json::object([
        ("case", Json::str(&run.case.label)),
        ("device", Json::str(c.device.token())),
        ("cap", Json::UInt(c.starvation_cap)),
        ("hi", Json::UInt(c.drain_hi as u64)),
        ("lo", Json::UInt(c.drain_lo as u64)),
        ("completions", Json::UInt(o.completions)),
        ("reads", Json::UInt(o.reads)),
        ("writes", Json::UInt(o.writes)),
        ("row_hits", Json::UInt(o.row_hits)),
        ("starved", Json::UInt(o.starved)),
        ("refreshes", Json::UInt(o.refreshes)),
        ("max_read_residency", Json::UInt(o.max_read_residency)),
        ("residency_bound", Json::UInt(o.residency_bound)),
        ("last_finish", Json::UInt(o.last_finish)),
        ("violations", Json::UInt(o.violations.len() as u64)),
    ])
}

/// Renders the full document.
pub fn json_report(seed: u64, patterns: &[PatternReport]) -> Json {
    let total: usize = patterns.iter().map(|p| p.report.total_violations()).sum();
    Json::object([
        ("bin", Json::str("stress")),
        ("seed", Json::UInt(seed)),
        (
            "patterns",
            Json::Array(
                patterns
                    .iter()
                    .map(|p| {
                        Json::object([
                            ("pattern", Json::str(&p.pattern)),
                            (
                                "runs",
                                Json::Array(p.report.runs.iter().map(run_json).collect()),
                            ),
                            (
                                "cross_findings",
                                Json::Array(
                                    p.report.cross_findings.iter().map(Json::str).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_violations", Json::UInt(total as u64)),
    ])
}

/// What [`lint_stress_json`] verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressJsonSummary {
    /// Patterns in the document.
    pub patterns: usize,
    /// Runs summed across patterns.
    pub runs: usize,
    /// The document's `total_violations`.
    pub total_violations: u64,
}

const RUN_FIELDS: [&str; 15] = [
    "case",
    "device",
    "cap",
    "hi",
    "lo",
    "completions",
    "reads",
    "writes",
    "row_hits",
    "starved",
    "refreshes",
    "max_read_residency",
    "residency_bound",
    "last_finish",
    "violations",
];

fn get<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    match obj {
        Json::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("{ctx}: missing key '{key}'")),
        _ => Err(format!("{ctx}: not an object")),
    }
}

fn as_uint(v: &Json, ctx: &str) -> Result<u64, String> {
    match v {
        Json::UInt(n) => Ok(*n),
        _ => Err(format!("{ctx}: not an unsigned integer")),
    }
}

/// Strictly validates a `results/stress.json` document.
///
/// # Errors
///
/// Returns a description of the first schema deviation: wrong `bin`,
/// missing or extra run fields, non-integer counters, or a
/// `total_violations` that does not equal the sum over runs and
/// cross-findings.
pub fn lint_stress_json(doc: &Json) -> Result<StressJsonSummary, String> {
    let bin = get(doc, "bin", "document")?;
    if !matches!(bin, Json::Str(s) if s == "stress") {
        return Err("document: 'bin' is not \"stress\"".into());
    }
    as_uint(get(doc, "seed", "document")?, "seed")?;
    let patterns = match get(doc, "patterns", "document")? {
        Json::Array(items) => items,
        _ => return Err("document: 'patterns' is not an array".into()),
    };
    let mut runs = 0usize;
    let mut violations = 0u64;
    for (i, p) in patterns.iter().enumerate() {
        let ctx = format!("patterns[{i}]");
        match get(p, "pattern", &ctx)? {
            Json::Str(_) => {}
            _ => return Err(format!("{ctx}: 'pattern' is not a string")),
        }
        let Json::Array(case_runs) = get(p, "runs", &ctx)? else {
            return Err(format!("{ctx}: 'runs' is not an array"));
        };
        for (j, r) in case_runs.iter().enumerate() {
            let rctx = format!("{ctx}.runs[{j}]");
            let Json::Object(pairs) = r else {
                return Err(format!("{rctx}: not an object"));
            };
            if pairs.len() != RUN_FIELDS.len() {
                return Err(format!(
                    "{rctx}: {} fields, expected {}",
                    pairs.len(),
                    RUN_FIELDS.len()
                ));
            }
            for field in RUN_FIELDS {
                let v = get(r, field, &rctx)?;
                if field != "case" && field != "device" {
                    as_uint(v, &format!("{rctx}.{field}"))?;
                }
            }
            violations += as_uint(get(r, "violations", &rctx)?, &rctx)?;
            runs += 1;
        }
        let Json::Array(findings) = get(p, "cross_findings", &ctx)? else {
            return Err(format!("{ctx}: 'cross_findings' is not an array"));
        };
        violations += findings.len() as u64;
    }
    let total = as_uint(
        get(doc, "total_violations", "document")?,
        "total_violations",
    )?;
    if total != violations {
        return Err(format!(
            "total_violations {total} != {violations} summed over runs and findings"
        ));
    }
    Ok(StressJsonSummary {
        patterns: patterns.len(),
        runs,
        total_violations: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{run_differential, DiffCase};
    use crate::pattern::{Pattern, PatternParams};
    use crate::stream::StressConfig;

    fn sample() -> Vec<PatternReport> {
        let stream = Pattern::WriteBurst.generate(&PatternParams::small(1));
        let cases = vec![
            DiffCase {
                label: "default".into(),
                config: StressConfig::ddr4_default(),
            },
            DiffCase {
                label: "fcfs".into(),
                config: StressConfig {
                    starvation_cap: 0,
                    ..StressConfig::ddr4_default()
                },
            },
        ];
        vec![PatternReport {
            pattern: "write-burst".into(),
            report: run_differential(&stream, &cases),
        }]
    }

    #[test]
    fn report_lints_clean_and_roundtrips() {
        let doc = json_report(1, &sample());
        let summary = lint_stress_json(&doc).unwrap();
        assert_eq!(summary.patterns, 1);
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.total_violations, 0);
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(lint_stress_json(&reparsed).unwrap(), summary);
    }

    #[test]
    fn lint_rejects_foreign_and_inconsistent_documents() {
        assert!(lint_stress_json(&Json::object([("bin", Json::str("fig12"))])).is_err());
        let mut doc = json_report(1, &sample());
        if let Json::Object(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "total_violations" {
                    *v = Json::UInt(99);
                }
            }
        }
        assert!(lint_stress_json(&doc).is_err());
    }
}

//! Property-based tests of query compilation: structural invariants of the
//! generated traces for arbitrary scales and parameters.

use proptest::prelude::*;
use sam::ops::TraceOp;
use sam_imdb::plan::{compile, PlanConfig};
use sam_imdb::query::Query;

fn small_config(ta: u64, tb: u64, seed: u64) -> PlanConfig {
    let mut cfg = PlanConfig::tiny();
    cfg.ta_records = ta;
    cfg.tb_records = tb;
    cfg.seed = seed;
    cfg
}

fn all_static_queries() -> Vec<Query> {
    let mut q = Query::q_set().to_vec();
    q.extend(Query::qs_set());
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_query_compiles_with_valid_references(
        ta in 64u64..512,
        tb in 64u64..512,
        seed in any::<u64>(),
    ) {
        let cfg = small_config(ta, tb, seed);
        for q in all_static_queries() {
            let plan = compile(q, &cfg);
            prop_assert_eq!(plan.traces.len(), cfg.cores);
            for op in plan.traces.iter().flatten() {
                match op {
                    TraceOp::Fields { table, record, fields, .. } => {
                        let spec = plan.tables[*table as usize];
                        prop_assert!(*record < spec.records, "{q}: record {record}");
                        prop_assert!(fields.iter().all(|&f| (f as u32) < spec.fields),
                            "{q}: field out of range");
                        prop_assert!(!fields.is_empty());
                    }
                    TraceOp::Whole { table, record, .. } => {
                        let spec = plan.tables[*table as usize];
                        prop_assert!(*record < spec.records);
                    }
                    TraceOp::Compute(c) => prop_assert!(*c > 0),
                }
            }
        }
    }

    #[test]
    fn selectivity_scales_projection_volume(
        seed in any::<u64>(),
        lo in 0.05f64..0.3,
    ) {
        let hi = (lo * 3.0).min(1.0);
        let cfg = small_config(2048, 2048, seed);
        let count_proj = |sel: f64| -> usize {
            let q = Query::Arithmetic { projectivity: 4, selectivity: sel };
            compile(q, &cfg)
                .traces
                .iter()
                .flatten()
                .filter(|op| matches!(op, TraceOp::Fields { fields, .. } if fields.len() == 4))
                .count()
        };
        prop_assert!(count_proj(lo) < count_proj(hi), "higher selectivity, more projections");
    }

    #[test]
    fn write_queries_emit_writes_read_queries_do_not(seed in any::<u64>()) {
        let cfg = small_config(256, 1024, seed);
        for q in all_static_queries() {
            let plan = compile(q, &cfg);
            let has_write = plan.traces.iter().flatten().any(|op| {
                matches!(op,
                    TraceOp::Fields { write: true, .. } | TraceOp::Whole { write: true, .. })
            });
            prop_assert_eq!(has_write, q.is_write(), "{}", q);
        }
    }

    #[test]
    fn aggregate_and_arithmetic_touch_identical_fields(
        seed in any::<u64>(),
        proj in 1u32..16,
    ) {
        // Same parameters -> same projected field set, regardless of
        // record-major vs field-major order.
        let cfg = small_config(512, 512, seed);
        let fields_of = |q: Query| -> std::collections::BTreeSet<u16> {
            compile(q, &cfg)
                .traces
                .iter()
                .flatten()
                .filter_map(|op| match op {
                    TraceOp::Fields { fields, .. } => Some(fields.clone()),
                    _ => None,
                })
                .flatten()
                .collect()
        };
        let a = fields_of(Query::Arithmetic { projectivity: proj, selectivity: 1.0 });
        let b = fields_of(Query::Aggregate { projectivity: proj, selectivity: 1.0 });
        prop_assert_eq!(a, b);
    }
}

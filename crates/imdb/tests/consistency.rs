//! Cross-validation: the planner's traces touch exactly the records the
//! value-level reference executor reads — the two halves of the database
//! (timing and function) agree on every query's record set.

use std::collections::BTreeSet;

use sam::ops::TraceOp;
use sam_imdb::plan::{compile, PlanConfig};
use sam_imdb::query::Query;
use sam_imdb::values::{Answer, Database};

fn cfg() -> PlanConfig {
    let mut cfg = PlanConfig::tiny();
    cfg.ta_records = 512;
    cfg.tb_records = 2048;
    cfg
}

/// Records of `table` that a plan touches with a given filter on ops.
fn touched_records(
    plan: &sam_imdb::plan::Plan,
    table: u8,
    filter: impl Fn(&TraceOp) -> bool,
) -> BTreeSet<u64> {
    plan.traces
        .iter()
        .flatten()
        .filter(|op| op.table() == Some(table) && filter(op))
        .map(|op| match op {
            TraceOp::Fields { record, .. } | TraceOp::Whole { record, .. } => *record,
            TraceOp::Compute(_) => unreachable!(),
        })
        .collect()
}

#[test]
fn q1_projection_trace_matches_executor_rows() {
    let cfg = cfg();
    let plan = compile(Query::Q1, &cfg);
    let mut db = Database::generate(&cfg);
    let answer = db.execute(Query::Q1);
    let projected = touched_records(
        &plan,
        0,
        |op| matches!(op, TraceOp::Fields { fields, .. } if fields == &vec![3, 4]),
    );
    let Answer::Rows(rows) = answer else {
        panic!("Q1 returns rows")
    };
    let executed: BTreeSet<u64> = rows.iter().map(|(r, _)| *r).collect();
    assert_eq!(projected, executed);
    assert!(!executed.is_empty());
}

#[test]
fn q12_write_trace_matches_modified_count() {
    let cfg = cfg();
    let plan = compile(Query::Q12, &cfg);
    let mut db = Database::generate(&cfg);
    let written = touched_records(&plan, 1, |op| {
        matches!(op, TraceOp::Fields { write: true, .. })
    });
    let Answer::Modified(n) = db.execute(Query::Q12) else {
        panic!()
    };
    assert_eq!(written.len() as u64, n);
}

#[test]
fn q2_whole_reads_match_selected_rows() {
    let cfg = cfg();
    let plan = compile(Query::Q2, &cfg);
    let mut db = Database::generate(&cfg);
    let wholes = touched_records(&plan, 1, |op| matches!(op, TraceOp::Whole { .. }));
    let Answer::Rows(rows) = db.execute(Query::Q2) else {
        panic!()
    };
    let executed: BTreeSet<u64> = rows.iter().map(|(r, _)| *r).collect();
    assert_eq!(wholes, executed);
}

#[test]
fn every_query_plans_and_executes_consistently() {
    // Smoke-level consistency: cardinalities are sane for all queries.
    let cfg = cfg();
    for q in Query::q_set().into_iter().chain(Query::qs_set()) {
        let plan = compile(q, &cfg);
        let mut db = Database::generate(&cfg);
        let answer = db.execute(q);
        let ops: usize = plan.traces.iter().map(Vec::len).sum();
        assert!(ops > 0, "{q}: empty plan");
        assert!(answer.cardinality() <= cfg.tb_records as usize, "{q}");
    }
}

#[test]
fn arithmetic_projection_trace_matches_executor() {
    let cfg = cfg();
    let q = Query::Arithmetic {
        projectivity: 4,
        selectivity: 0.5,
    };
    let plan = compile(q, &cfg);
    let mut db = Database::generate(&cfg);
    let Answer::Rows(rows) = db.execute(q) else {
        panic!()
    };
    let executed: BTreeSet<u64> = rows.iter().map(|(r, _)| *r).collect();
    let projected = touched_records(
        &plan,
        0,
        |op| matches!(op, TraceOp::Fields { fields, .. } if fields.len() == 4),
    );
    assert_eq!(projected, executed);
}

//! Value-carrying tables: the functional half of the database.
//!
//! The timing simulation works on traces, but a credible database substrate
//! must also *compute*. [`Table`] materializes the deterministic synthetic
//! values of [`crate::data`] so the reference executor ([`crate::values`])
//! can produce real query answers — and tests can verify that the traces
//! the planner emits touch exactly the records whose values satisfy the
//! predicates.

use crate::data::field_value;
use sam::layout::TableSpec;

/// An in-memory table of `records x fields` u64 values, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    fields: u32,
    records: u64,
    data: Vec<u64>,
}

impl Table {
    /// Materializes the synthetic table `table_id` at `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the table would exceed `isize::MAX` bytes (absurd scales).
    pub fn generate(seed: u64, table_id: u8, fields: u32, records: u64) -> Self {
        assert!(
            fields > 0 && records > 0,
            "table must have fields and records"
        );
        let mut data = Vec::with_capacity((records * fields as u64) as usize);
        for r in 0..records {
            for f in 0..fields as u16 {
                data.push(field_value(seed, table_id, r, f));
            }
        }
        Self {
            fields,
            records,
            data,
        }
    }

    /// Materializes the table matching a [`TableSpec`].
    pub fn from_spec(seed: u64, table_id: u8, spec: &TableSpec) -> Self {
        Self::generate(seed, table_id, spec.fields, spec.records)
    }

    /// Number of fields per record.
    pub fn fields(&self) -> u32 {
        self.fields
    }

    /// Number of records.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Reads one field.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, record: u64, field: u16) -> u64 {
        assert!(
            record < self.records && (field as u32) < self.fields,
            "out of range"
        );
        self.data[(record * self.fields as u64 + field as u64) as usize]
    }

    /// Writes one field (UPDATE queries).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, record: u64, field: u16, value: u64) {
        assert!(
            record < self.records && (field as u32) < self.fields,
            "out of range"
        );
        self.data[(record * self.fields as u64 + field as u64) as usize] = value;
    }

    /// One whole record as a slice.
    pub fn record(&self, record: u64) -> &[u64] {
        assert!(record < self.records, "out of range");
        let start = (record * self.fields as u64) as usize;
        &self.data[start..start + self.fields as usize]
    }

    /// Iterates `(record_index, record_slice)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u64])> {
        (0..self.records).map(move |r| (r, self.record(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_matches_field_value() {
        let t = Table::generate(11, 0, 16, 64);
        for r in [0u64, 13, 63] {
            for f in [0u16, 7, 15] {
                assert_eq!(t.get(r, f), field_value(11, 0, r, f));
            }
        }
    }

    #[test]
    fn set_then_get_roundtrips() {
        let mut t = Table::generate(1, 1, 8, 8);
        t.set(3, 5, 42);
        assert_eq!(t.get(3, 5), 42);
        assert_ne!(t.get(3, 4), 42);
    }

    #[test]
    fn record_slice_matches_gets() {
        let t = Table::generate(2, 0, 4, 10);
        let rec = t.record(7);
        assert_eq!(rec.len(), 4);
        for f in 0..4u16 {
            assert_eq!(rec[f as usize], t.get(7, f));
        }
    }

    #[test]
    fn iter_covers_all_records() {
        let t = Table::generate(3, 0, 2, 5);
        assert_eq!(t.iter().count(), 5);
        let ids: Vec<u64> = t.iter().map(|(r, _)| r).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_spec_matches_dimensions() {
        let spec = TableSpec::tb(0, 32);
        let t = Table::from_spec(5, 1, &spec);
        assert_eq!(t.fields(), 16);
        assert_eq!(t.records(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        Table::generate(1, 0, 4, 4).get(4, 0);
    }
}

//! The IMDB workload engine of the evaluation (Section 6.1).
//!
//! Two benchmark tables — the wide `Ta` (128 x 8B fields, 1KB records) and
//! the narrow `Tb` (16 x 8B fields, 128B records) — and the Table 3 query
//! set: Q1–Q12 (column-store-preferring; from the RC-NVM benchmark), the
//! supplemental Qs1–Qs6 (row-store-preferring), and the parametric
//! arithmetic/aggregate queries whose selectivity, projectivity, and record
//! size the Figure 15 sweeps vary.
//!
//! Queries compile ([`plan`]) into design-independent multi-core traces
//! (`sam::ops`), which [`exec`] runs against any design/store combination.
//!
//! # Example
//!
//! ```
//! use sam_imdb::query::Query;
//! use sam_imdb::plan::PlanConfig;
//! use sam_imdb::exec::{run_query, Workload};
//! use sam::designs::{commodity, sam_en};
//! use sam::layout::Store;
//!
//! let cfg = PlanConfig::tiny();
//! let base = run_query(&Workload::new(Query::Q3, cfg), &commodity(), Store::Row);
//! let sam = run_query(&Workload::new(Query::Q3, cfg), &sam_en(), Store::Row);
//! assert!(sam.result.cycles < base.result.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod exec;
pub mod plan;
pub mod query;
pub mod sql;
pub mod table;
pub mod values;

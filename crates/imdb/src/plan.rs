//! Query compilation: Table 3 queries to design-independent core traces.
//!
//! The engine models a conventional executor: column-preferring (Q) queries
//! read exactly the fields they need, record at a time; the supplemental
//! row-preferring (Qs) queries process whole tuples; the parametric
//! aggregate query processes field-at-a-time (each field scanned
//! independently — the property that relieves RC-NVM's field-switch cost in
//! Figure 15(g)).
//!
//! Selection decisions are derived from a hash of `(seed, table, record)`
//! so that every design sees the identical record set.

use sam::layout::TableSpec;
use sam::ops::{Trace, TraceOp};

use crate::data::selected;
use crate::query::Query;

/// Base physical address of table Ta (1 GiB mark, row-aligned).
pub const TA_BASE: u64 = 0x4000_0000;
/// Base physical address of table Tb (4 GiB mark, row-aligned).
pub const TB_BASE: u64 = 0x1_0000_0000;

/// CPU-cycle costs of executor work per record (calibrated so the ideal
/// column-store speedup on Q queries lands in the paper's 4-5x band; see
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Scan-loop overhead per record.
    pub loop_overhead: u32,
    /// Predicate evaluation.
    pub predicate: u32,
    /// Per projected/output field.
    pub per_field: u32,
    /// Per aggregate update.
    pub aggregate: u32,
    /// Hash-join build/probe work per record.
    pub probe: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            loop_overhead: 2,
            predicate: 1,
            per_field: 1,
            aggregate: 1,
            probe: 4,
        }
    }
}

/// Workload scaling and determinism knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    /// Records loaded into Ta (the paper loads 10M; scale to taste).
    pub ta_records: u64,
    /// Records loaded into Tb.
    pub tb_records: u64,
    /// Fields in Ta (128 in the paper; Figure 15(i) varies it).
    pub ta_fields: u32,
    /// Cores the trace is partitioned over.
    pub cores: usize,
    /// Selection-hash seed.
    pub seed: u64,
    /// Executor cost model.
    pub costs: CostModel,
}

impl PlanConfig {
    /// The default evaluation scale: enough data to dwarf the 8MB LLC.
    pub fn default_scale() -> Self {
        Self {
            ta_records: 16 * 1024,
            tb_records: 128 * 1024,
            ta_fields: 128,
            cores: 4,
            seed: 0x5A11AD,
            costs: CostModel::default(),
        }
    }

    /// A miniature scale for unit tests.
    pub fn tiny() -> Self {
        Self {
            ta_records: 512,
            tb_records: 2048,
            ta_fields: 128,
            cores: 4,
            seed: 7,
            costs: CostModel::default(),
        }
    }

    /// The Ta table spec under this config.
    pub fn ta(&self) -> TableSpec {
        TableSpec::new(TA_BASE, self.ta_fields, self.ta_records)
    }

    /// The Tb table spec under this config.
    pub fn tb(&self) -> TableSpec {
        TableSpec::tb(TB_BASE, self.tb_records)
    }
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self::default_scale()
    }
}

/// A compiled query: its tables and one trace per core.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Tables referenced by the traces (index = `TraceOp` table id).
    pub tables: Vec<TableSpec>,
    /// Per-core op streams.
    pub traces: Vec<Trace>,
}

/// Deterministically chooses `count` distinct projected fields (excluding
/// field 0, the predicate field), sorted ascending. Shared with the
/// value-level executor so both project the same columns.
pub fn projected_field_list(seed: u64, table_fields: u32, count: u32) -> Vec<u16> {
    let count = count.min(table_fields.saturating_sub(1)).max(1);
    let mut rng = sam_util::rng::Xoshiro256StarStar::new(seed ^ 0xF1E1D5);
    let picks = rng.sample_indices((table_fields - 1) as usize, count as usize);
    picks.into_iter().map(|i| (i + 1) as u16).collect()
}

/// Compiles `query` into a [`Plan`].
pub fn compile(query: Query, cfg: &PlanConfig) -> Plan {
    let c = cfg.costs;
    let seed = cfg.seed;
    let cores = cfg.cores;
    let ta = cfg.ta();
    let tb = cfg.tb();
    // Table ids: 0 = Ta, 1 = Tb (even when only one is used, keep both so
    // joins and single-table queries share the id space).
    let tables = vec![ta, tb];
    let mut traces = vec![Trace::new(); cores];
    // Contiguous-chunk partitioning: core i scans records
    // [i*n/cores, (i+1)*n/cores) — each core issues its own gather groups'
    // stride fills (a round-robin split would funnel every group-leader
    // record to core 0 and serialize all misses behind one MLP window).
    let core_of = |i: u64, total: u64| -> usize {
        let chunk = total.div_ceil(cores as u64).max(1);
        ((i / chunk) as usize).min(cores - 1)
    };
    let push = |traces: &mut Vec<Trace>, core: usize, ops: &mut Vec<TraceOp>| {
        traces[core].append(ops);
    };

    // Scan helper: per record of `table`, read `pred_fields`, and when
    // selected run `then(record, ops)`.
    let filter_scan = |traces: &mut Vec<Trace>,
                       table: u8,
                       records: u64,
                       pred_fields: &[u16],
                       sel: f64,
                       then: &mut dyn FnMut(u64, &mut Vec<TraceOp>)| {
        for r in 0..records {
            let mut ops = Vec::with_capacity(4);
            ops.push(TraceOp::Fields {
                table,
                record: r,
                fields: pred_fields.to_vec(),
                write: false,
            });
            ops.push(TraceOp::Compute(c.loop_overhead + c.predicate));
            if selected(seed, table, r, sel) {
                then(r, &mut ops);
            }
            push(traces, core_of(r, records), &mut ops);
        }
    };

    match query {
        Query::Q1 => {
            filter_scan(&mut traces, 0, ta.records, &[10], 0.25, &mut |r, ops| {
                ops.push(TraceOp::Fields {
                    table: 0,
                    record: r,
                    fields: vec![3, 4],
                    write: false,
                });
                ops.push(TraceOp::Compute(2 * c.per_field));
            });
        }
        Query::Q2 => {
            // Predicate mostly false (Section 6.1).
            filter_scan(&mut traces, 1, tb.records, &[10], 0.01, &mut |r, ops| {
                ops.push(TraceOp::Whole {
                    table: 1,
                    record: r,
                    write: false,
                });
                ops.push(TraceOp::Compute(16 * c.per_field));
            });
        }
        Query::Q3 => {
            filter_scan(&mut traces, 0, ta.records, &[10], 0.25, &mut |r, ops| {
                ops.push(TraceOp::Fields {
                    table: 0,
                    record: r,
                    fields: vec![9],
                    write: false,
                });
                ops.push(TraceOp::Compute(c.aggregate));
            });
        }
        Query::Q4 => {
            filter_scan(&mut traces, 1, tb.records, &[10], 0.25, &mut |r, ops| {
                ops.push(TraceOp::Fields {
                    table: 1,
                    record: r,
                    fields: vec![9],
                    write: false,
                });
                ops.push(TraceOp::Compute(c.aggregate));
            });
        }
        Query::Q5 => {
            filter_scan(&mut traces, 0, ta.records, &[10], 0.25, &mut |r, ops| {
                ops.push(TraceOp::Fields {
                    table: 0,
                    record: r,
                    fields: vec![1],
                    write: false,
                });
                ops.push(TraceOp::Compute(c.aggregate));
            });
        }
        Query::Q6 => {
            filter_scan(&mut traces, 1, tb.records, &[10], 0.25, &mut |r, ops| {
                ops.push(TraceOp::Fields {
                    table: 1,
                    record: r,
                    fields: vec![1],
                    write: false,
                });
                ops.push(TraceOp::Compute(c.aggregate));
            });
        }
        Query::Q7 | Query::Q8 => {
            // Hash join: build over Tb, probe with Ta; ~25% of probes match.
            let build_fields: Vec<u16> = if query == Query::Q7 {
                vec![1, 9, 4]
            } else {
                vec![9, 4]
            };
            let probe_fields: Vec<u16> = if query == Query::Q7 {
                vec![1, 9]
            } else {
                vec![9]
            };
            for r in 0..tb.records {
                let mut ops = vec![
                    TraceOp::Fields {
                        table: 1,
                        record: r,
                        fields: build_fields.clone(),
                        write: false,
                    },
                    TraceOp::Compute(c.loop_overhead + c.probe),
                ];
                push(&mut traces, core_of(r, tb.records), &mut ops);
            }
            filter_scan(
                &mut traces,
                0,
                ta.records,
                &probe_fields,
                0.25,
                &mut |r, ops| {
                    ops.push(TraceOp::Compute(c.probe));
                    ops.push(TraceOp::Fields {
                        table: 0,
                        record: r,
                        fields: vec![3],
                        write: false,
                    });
                    ops.push(TraceOp::Compute(2 * c.per_field));
                },
            );
        }
        Query::Q9 | Query::Q10 => {
            let second: u16 = if query == Query::Q9 { 9 } else { 2 };
            filter_scan(&mut traces, 0, ta.records, &[1], 0.5, &mut |r, ops| {
                ops.push(TraceOp::Fields {
                    table: 0,
                    record: r,
                    fields: vec![second],
                    write: false,
                });
                ops.push(TraceOp::Compute(c.predicate));
                if selected(seed ^ 1, 0, r, 0.5) {
                    ops.push(TraceOp::Fields {
                        table: 0,
                        record: r,
                        fields: vec![3, 4],
                        write: false,
                    });
                    ops.push(TraceOp::Compute(2 * c.per_field));
                }
            });
        }
        Query::Q11 => {
            filter_scan(&mut traces, 1, tb.records, &[10], 0.25, &mut |r, ops| {
                ops.push(TraceOp::Fields {
                    table: 1,
                    record: r,
                    fields: vec![3, 4],
                    write: true,
                });
                ops.push(TraceOp::Compute(2 * c.per_field));
            });
        }
        Query::Q12 => {
            filter_scan(&mut traces, 1, tb.records, &[10], 0.25, &mut |r, ops| {
                ops.push(TraceOp::Fields {
                    table: 1,
                    record: r,
                    fields: vec![9],
                    write: true,
                });
                ops.push(TraceOp::Compute(c.per_field));
            });
        }
        Query::Qs1 | Query::Qs2 => {
            // LIMIT scan: whole-record reads of a prefix. Scaled to an
            // eighth of the table so the measurement stays cache-dwarfing
            // (the paper's LIMIT 1024 over 10M records is similarly small
            // relative to its scale).
            let (tid, records) = if query == Query::Qs1 {
                (0u8, ta.records)
            } else {
                (1, tb.records)
            };
            let limit = (records / 8).max(1024).min(records);
            for r in 0..limit {
                let fields = if tid == 0 { ta.fields } else { tb.fields };
                let mut ops = vec![
                    TraceOp::Whole {
                        table: tid,
                        record: r,
                        write: false,
                    },
                    TraceOp::Compute(c.loop_overhead + fields * c.per_field / 8),
                ];
                push(&mut traces, core_of(r, limit), &mut ops);
            }
        }
        Query::Qs3 | Query::Qs4 => {
            // Tuple-at-a-time row engine: the whole tuple is materialized,
            // then filtered.
            let (tid, records) = if query == Query::Qs3 {
                (0u8, ta.records)
            } else {
                (1, tb.records)
            };
            for r in 0..records {
                let mut ops = vec![
                    TraceOp::Whole {
                        table: tid,
                        record: r,
                        write: false,
                    },
                    TraceOp::Compute(c.loop_overhead + c.predicate),
                ];
                if selected(seed, tid, r, 0.25) {
                    ops.push(TraceOp::Compute(c.per_field));
                }
                push(&mut traces, core_of(r, records), &mut ops);
            }
        }
        Query::Qs5 | Query::Qs6 => {
            // Appends: whole-record writes over a fresh eighth of the table.
            let (tid, records, fields) = if query == Query::Qs5 {
                (0u8, ta.records, ta.fields)
            } else {
                (1, tb.records, tb.fields)
            };
            let inserts = (records / 8).max(1024).min(records);
            for i in 0..inserts {
                let r = records - inserts + i; // append region
                let mut ops = vec![
                    TraceOp::Whole {
                        table: tid,
                        record: r,
                        write: true,
                    },
                    TraceOp::Compute(c.loop_overhead + fields * c.per_field / 8),
                ];
                push(&mut traces, core_of(i, inserts), &mut ops);
            }
        }
        Query::Arithmetic {
            projectivity,
            selectivity,
        } => {
            let proj = projected_field_list(seed, ta.fields, projectivity);
            filter_scan(
                &mut traces,
                0,
                ta.records,
                &[0],
                selectivity,
                &mut |r, ops| {
                    // Record-at-a-time: all projected fields of this record.
                    ops.push(TraceOp::Fields {
                        table: 0,
                        record: r,
                        fields: proj.clone(),
                        write: false,
                    });
                    ops.push(TraceOp::Compute(proj.len() as u32 * c.per_field));
                },
            );
        }
        Query::Aggregate {
            projectivity,
            selectivity,
        } => {
            // Field-at-a-time: predicate pass first, then one pass per field.
            let proj = projected_field_list(seed, ta.fields, projectivity);
            for r in 0..ta.records {
                let mut ops = vec![
                    TraceOp::Fields {
                        table: 0,
                        record: r,
                        fields: vec![0],
                        write: false,
                    },
                    TraceOp::Compute(c.loop_overhead + c.predicate),
                ];
                push(&mut traces, core_of(r, ta.records), &mut ops);
            }
            for &f in &proj {
                for r in 0..ta.records {
                    if selected(seed, 0, r, selectivity) {
                        let mut ops = vec![
                            TraceOp::Fields {
                                table: 0,
                                record: r,
                                fields: vec![f],
                                write: false,
                            },
                            TraceOp::Compute(c.aggregate),
                        ];
                        push(&mut traces, core_of(r, ta.records), &mut ops);
                    }
                }
            }
        }
    }

    Plan { tables, traces }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_ops(plan: &Plan) -> usize {
        plan.traces.iter().map(std::vec::Vec::len).sum()
    }

    #[test]
    fn selection_is_deterministic_and_roughly_calibrated() {
        let n = 10_000u64;
        let hits = (0..n).filter(|&r| selected(42, 0, r, 0.25)).count();
        let hits2 = (0..n).filter(|&r| selected(42, 0, r, 0.25)).count();
        assert_eq!(hits, hits2);
        let frac = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&frac), "selectivity {frac}");
    }

    #[test]
    fn projected_fields_distinct_sorted_nonzero() {
        let p = projected_field_list(9, 128, 64);
        assert_eq!(p.len(), 64);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert!(p.iter().all(|&f| (1..128).contains(&f)));
    }

    #[test]
    fn projectivity_clamped_to_table() {
        assert_eq!(projected_field_list(9, 16, 128).len(), 15);
        assert_eq!(projected_field_list(9, 16, 0).len(), 1);
    }

    #[test]
    fn q1_reads_pred_and_projection() {
        let cfg = PlanConfig::tiny();
        let plan = compile(Query::Q1, &cfg);
        assert_eq!(plan.traces.len(), 4);
        let ops = count_ops(&plan);
        // Every record gets 2 ops; ~25% get 2 more.
        let expected_min = 2 * cfg.ta_records as usize;
        assert!(
            ops > expected_min && ops < 3 * cfg.ta_records as usize,
            "ops {ops}"
        );
        // Projection reads f3, f4.
        let any_proj = plan
            .traces
            .iter()
            .flatten()
            .any(|op| matches!(op, TraceOp::Fields { fields, .. } if fields == &vec![3, 4]));
        assert!(any_proj);
    }

    #[test]
    fn q2_rarely_selects() {
        let plan = compile(Query::Q2, &PlanConfig::tiny());
        let wholes = plan
            .traces
            .iter()
            .flatten()
            .filter(|op| matches!(op, TraceOp::Whole { .. }))
            .count();
        assert!(wholes < 2048 / 20, "Q2 selects ~1%: {wholes}");
    }

    #[test]
    fn q11_writes_selected_fields() {
        let plan = compile(Query::Q11, &PlanConfig::tiny());
        let writes = plan
            .traces
            .iter()
            .flatten()
            .filter(|op| matches!(op, TraceOp::Fields { write: true, .. }))
            .count();
        assert!(writes > 0);
    }

    #[test]
    fn qs5_appends_whole_writes() {
        let cfg = PlanConfig::tiny();
        let plan = compile(Query::Qs5, &cfg);
        let writes: Vec<u64> = plan
            .traces
            .iter()
            .flatten()
            .filter_map(|op| match op {
                TraceOp::Whole {
                    record,
                    write: true,
                    ..
                } => Some(*record),
                _ => None,
            })
            .collect();
        assert!(!writes.is_empty());
        assert!(writes.iter().all(|&r| r < cfg.ta_records));
    }

    #[test]
    fn join_touches_both_tables() {
        let plan = compile(Query::Q7, &PlanConfig::tiny());
        let tables: std::collections::HashSet<u8> = plan
            .traces
            .iter()
            .flatten()
            .filter_map(sam::ops::TraceOp::table)
            .collect();
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn aggregate_is_field_major() {
        let cfg = PlanConfig::tiny();
        let plan = compile(
            Query::Aggregate {
                projectivity: 2,
                selectivity: 1.0,
            },
            &cfg,
        );
        // Field-major: the trace revisits record 0 once per projected field
        // after the predicate pass.
        let t0 = &plan.traces[0];
        let r0_reads = t0
            .iter()
            .filter(|op| matches!(op, TraceOp::Fields { record: 0, .. }))
            .count();
        assert_eq!(r0_reads, 3, "predicate + 2 field passes");
    }

    #[test]
    fn arithmetic_is_record_major() {
        let cfg = PlanConfig::tiny();
        let plan = compile(
            Query::Arithmetic {
                projectivity: 4,
                selectivity: 1.0,
            },
            &cfg,
        );
        let t0 = &plan.traces[0];
        // Record 0: predicate read then one Fields op with all 4 fields.
        let proj_op = t0.iter().find(
            |op| matches!(op, TraceOp::Fields { record: 0, fields, .. } if fields.len() == 4),
        );
        assert!(proj_op.is_some());
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = PlanConfig::tiny();
        let a = compile(Query::Q9, &cfg);
        let b = compile(Query::Q9, &cfg);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn tables_are_far_apart() {
        let cfg = PlanConfig::default_scale();
        let ta = cfg.ta();
        let tb = cfg.tb();
        // Leave room for the 32x vertical-stacking expansion and the column
        // space of each table.
        assert!(tb.base > ta.base + 40 * ta.data_bytes());
    }
}

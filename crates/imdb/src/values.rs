//! Value-level reference executor: computes the actual answers of the
//! Table 3 queries against materialized [`crate::table::Table`]s.
//!
//! The timing simulator never needs these values, but the reproduction
//! does: the reference answers pin down *which* records each query touches,
//! and tests cross-validate that the planner's traces access exactly those
//! records (`tests/` in this crate). Updates (Q11/Q12) and inserts
//! (Qs5/Qs6) mutate the tables, so repeated execution is observable.

use crate::data::{selected, threshold, PRED_FIELD};
use crate::plan::PlanConfig;
use crate::query::Query;
use crate::table::Table;

/// The answer a query produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Projected rows (record id plus the projected field values).
    Rows(Vec<(u64, Vec<u64>)>),
    /// A single aggregate (SUM -> wrapping sum; AVG -> mean).
    Sum(u64),
    /// Averages, one per aggregated field.
    Avgs(Vec<f64>),
    /// Number of records modified (UPDATE / INSERT).
    Modified(u64),
}

impl Answer {
    /// Row count for `Rows`, length for `Avgs`, count for `Modified`,
    /// 1 for `Sum` — a size usable in assertions.
    pub fn cardinality(&self) -> usize {
        match self {
            Answer::Rows(r) => r.len(),
            Answer::Avgs(a) => a.len(),
            Answer::Modified(n) => *n as usize,
            Answer::Sum(_) => 1,
        }
    }
}

/// A materialized database: Ta and Tb.
#[derive(Debug, Clone)]
pub struct Database {
    /// The wide table (id 0).
    pub ta: Table,
    /// The narrow table (id 1).
    pub tb: Table,
    seed: u64,
}

impl Database {
    /// Materializes both tables for `cfg`.
    pub fn generate(cfg: &PlanConfig) -> Self {
        Self {
            ta: Table::generate(cfg.seed, 0, cfg.ta_fields, cfg.ta_records),
            tb: Table::generate(cfg.seed, 1, 16, cfg.tb_records),
            seed: cfg.seed,
        }
    }

    fn table(&self, id: u8) -> &Table {
        if id == 0 {
            &self.ta
        } else {
            &self.tb
        }
    }

    /// Evaluates `query`, mutating the database for write queries.
    ///
    /// The predicate selectivities mirror the plan compiler exactly (same
    /// hash-derived thresholds), so the records a trace touches are the
    /// records this executor reads.
    pub fn execute(&mut self, query: Query) -> Answer {
        let seed = self.seed;
        match query {
            Query::Q1 => self.filter_project(0, 0.25, &[3, 4]),
            Query::Q2 => {
                let ids: Vec<u64> = self.matching(1, 0.01);
                Answer::Rows(
                    ids.into_iter()
                        .map(|r| (r, self.tb.record(r).to_vec()))
                        .collect(),
                )
            }
            Query::Q3 => self.filter_sum(0, 0.25, 9),
            Query::Q4 => self.filter_sum(1, 0.25, 9),
            Query::Q5 => self.filter_avg(0, 0.25, &[1]),
            Query::Q6 => self.filter_avg(1, 0.25, &[1]),
            Query::Q7 | Query::Q8 => {
                // Hash join on f9 (modelled as the planner does: ~25% of Ta
                // probes match); project Ta.f3 of matching probes.
                let rows = (0..self.ta.records())
                    .filter(|&r| selected(seed, 0, r, 0.25))
                    .map(|r| (r, vec![self.ta.get(r, 3)]))
                    .collect();
                Answer::Rows(rows)
            }
            Query::Q9 | Query::Q10 => {
                let rows = (0..self.ta.records())
                    .filter(|&r| selected(seed, 0, r, 0.5) && selected(seed ^ 1, 0, r, 0.5))
                    .map(|r| (r, vec![self.ta.get(r, 3), self.ta.get(r, 4)]))
                    .collect();
                Answer::Rows(rows)
            }
            Query::Q11 => {
                let ids = self.matching(1, 0.25);
                for &r in &ids {
                    self.tb.set(r, 3, 0xFACE);
                    self.tb.set(r, 4, 0xCAFE);
                }
                Answer::Modified(ids.len() as u64)
            }
            Query::Q12 => {
                let ids = self.matching(1, 0.25);
                for &r in &ids {
                    self.tb.set(r, 9, 0xBEEF);
                }
                Answer::Modified(ids.len() as u64)
            }
            Query::Qs1 | Query::Qs2 => {
                let (t, id) = if query == Query::Qs1 {
                    (&self.ta, 0)
                } else {
                    (&self.tb, 1)
                };
                let _ = id;
                let limit = (t.records() / 8).max(1024).min(t.records());
                Answer::Rows((0..limit).map(|r| (r, t.record(r).to_vec())).collect())
            }
            Query::Qs3 => self.select_star(0, 0.25),
            Query::Qs4 => self.select_star(1, 0.25),
            Query::Qs5 | Query::Qs6 => {
                // Appends overwrite the reserved tail eighth of the table.
                let t = if query == Query::Qs5 {
                    &mut self.ta
                } else {
                    &mut self.tb
                };
                let records = t.records();
                let inserts = (records / 8).max(1024).min(records);
                for i in 0..inserts {
                    let r = records - inserts + i;
                    for f in 0..t.fields() as u16 {
                        t.set(r, f, r ^ f as u64);
                    }
                }
                Answer::Modified(inserts)
            }
            Query::Arithmetic {
                projectivity,
                selectivity,
            } => {
                let proj = crate::plan::projected_field_list(seed, self.ta.fields(), projectivity);
                let rows = (0..self.ta.records())
                    .filter(|&r| selected(seed, 0, r, selectivity))
                    .map(|r| {
                        let sum: u64 = proj
                            .iter()
                            .map(|&f| self.ta.get(r, f))
                            .fold(0, u64::wrapping_add);
                        (r, vec![sum])
                    })
                    .collect();
                Answer::Rows(rows)
            }
            Query::Aggregate {
                projectivity,
                selectivity,
            } => {
                let proj = crate::plan::projected_field_list(seed, self.ta.fields(), projectivity);
                let ids: Vec<u64> = (0..self.ta.records())
                    .filter(|&r| selected(seed, 0, r, selectivity))
                    .collect();
                let avgs = proj
                    .iter()
                    .map(|&f| {
                        if ids.is_empty() {
                            0.0
                        } else {
                            // Average in the value domain / 2^32 to stay finite.
                            ids.iter()
                                .map(|&r| (self.ta.get(r, f) >> 32) as f64)
                                .sum::<f64>()
                                / ids.len() as f64
                        }
                    })
                    .collect();
                Answer::Avgs(avgs)
            }
        }
    }

    /// Record ids of `table` whose predicate field exceeds the threshold.
    pub fn matching(&self, table: u8, selectivity: f64) -> Vec<u64> {
        let t = self.table(table);
        let x = threshold(selectivity);
        (0..t.records())
            .filter(|&r| t.get(r, PRED_FIELD) > x)
            .collect()
    }

    fn filter_project(&self, table: u8, sel: f64, fields: &[u16]) -> Answer {
        let t = self.table(table);
        Answer::Rows(
            self.matching(table, sel)
                .into_iter()
                .map(|r| (r, fields.iter().map(|&f| t.get(r, f)).collect()))
                .collect(),
        )
    }

    fn filter_sum(&self, table: u8, sel: f64, field: u16) -> Answer {
        let t = self.table(table);
        Answer::Sum(
            self.matching(table, sel)
                .into_iter()
                .map(|r| t.get(r, field))
                .fold(0u64, u64::wrapping_add),
        )
    }

    fn filter_avg(&self, table: u8, sel: f64, fields: &[u16]) -> Answer {
        let t = self.table(table);
        let ids = self.matching(table, sel);
        Answer::Avgs(
            fields
                .iter()
                .map(|&f| {
                    if ids.is_empty() {
                        0.0
                    } else {
                        ids.iter().map(|&r| (t.get(r, f) >> 32) as f64).sum::<f64>()
                            / ids.len() as f64
                    }
                })
                .collect(),
        )
    }

    fn select_star(&self, table: u8, sel: f64) -> Answer {
        let t = self.table(table);
        Answer::Rows(
            self.matching(table, sel)
                .into_iter()
                .map(|r| (r, t.record(r).to_vec()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut cfg = PlanConfig::tiny();
        cfg.ta_records = 256;
        cfg.tb_records = 1024;
        Database::generate(&cfg)
    }

    #[test]
    fn matching_agrees_with_plan_selection() {
        let d = db();
        let by_value: Vec<u64> = d.matching(1, 0.25);
        let by_hash: Vec<u64> = (0..d.tb.records())
            .filter(|&r| selected(d.seed, 1, r, 0.25))
            .collect();
        assert_eq!(by_value, by_hash);
        assert!(!by_value.is_empty());
    }

    #[test]
    fn q3_sum_matches_manual_fold() {
        let mut d = db();
        let expected = d
            .matching(0, 0.25)
            .into_iter()
            .map(|r| d.ta.get(r, 9))
            .fold(0u64, u64::wrapping_add);
        assert_eq!(d.execute(Query::Q3), Answer::Sum(expected));
    }

    #[test]
    fn q11_update_is_observable() {
        let mut d = db();
        let ids = d.matching(1, 0.25);
        let before = d.tb.get(ids[0], 3);
        let answer = d.execute(Query::Q11);
        assert_eq!(answer, Answer::Modified(ids.len() as u64));
        assert_eq!(d.tb.get(ids[0], 3), 0xFACE);
        assert_ne!(before, 0xFACE);
    }

    #[test]
    fn q2_is_sparse() {
        let mut d = db();
        if let Answer::Rows(rows) = d.execute(Query::Q2) {
            assert!(rows.len() < d.tb.records() as usize / 20);
            for (_, values) in &rows {
                assert_eq!(values.len(), 16, "SELECT * returns whole tuples");
            }
        } else {
            panic!("Q2 returns rows");
        }
    }

    #[test]
    fn qs1_limit_returns_prefix() {
        let mut d = db();
        if let Answer::Rows(rows) = d.execute(Query::Qs1) {
            assert_eq!(rows[0].0, 0);
            assert!(rows.len() as u64 <= d.ta.records());
        } else {
            panic!("Qs1 returns rows");
        }
    }

    #[test]
    fn arithmetic_rows_scale_with_selectivity() {
        let mut d = db();
        let small = d
            .execute(Query::Arithmetic {
                projectivity: 4,
                selectivity: 0.1,
            })
            .cardinality();
        let large = d
            .execute(Query::Arithmetic {
                projectivity: 4,
                selectivity: 0.9,
            })
            .cardinality();
        assert!(small < large);
    }

    #[test]
    fn aggregate_returns_one_avg_per_field() {
        let mut d = db();
        let a = d.execute(Query::Aggregate {
            projectivity: 6,
            selectivity: 0.5,
        });
        assert_eq!(a.cardinality(), 6);
    }

    #[test]
    fn inserts_modify_tail_records() {
        let mut d = db();
        let records = d.tb.records();
        let n = d.execute(Query::Qs6);
        let modified = match n {
            Answer::Modified(n) => n,
            _ => panic!(),
        };
        let last = records - 1;
        assert_eq!(d.tb.get(last, 0), last);
        assert!(modified >= 1024.min(records));
    }
}

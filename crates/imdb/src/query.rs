//! The benchmark query set (Table 3).

/// A benchmark query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// `SELECT f3, f4 FROM Ta WHERE f10 > x`
    Q1,
    /// `SELECT * FROM Tb WHERE f10 > x` (predicate mostly false)
    Q2,
    /// `SELECT SUM(f9) FROM Ta WHERE f10 > x`
    Q3,
    /// `SELECT SUM(f9) FROM Tb WHERE f10 > x`
    Q4,
    /// `SELECT AVG(f1) FROM Ta WHERE f10 > x`
    Q5,
    /// `SELECT AVG(f1) FROM Tb WHERE f10 > x`
    Q6,
    /// `SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f1 > Tb.f1 AND Ta.f9 = Tb.f9`
    Q7,
    /// `SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9`
    Q8,
    /// `SELECT f3, f4 FROM Ta WHERE f1 > x AND f9 < y`
    Q9,
    /// `SELECT f3, f4 FROM Ta WHERE f1 > x AND f2 < y`
    Q10,
    /// `UPDATE Tb SET f3 = x, f4 = y WHERE f10 = z`
    Q11,
    /// `UPDATE Tb SET f9 = x WHERE f10 = y`
    Q12,
    /// `SELECT * FROM Ta LIMIT 1024`
    Qs1,
    /// `SELECT * FROM Tb LIMIT 1024`
    Qs2,
    /// `SELECT * FROM Ta WHERE f10 > x`
    Qs3,
    /// `SELECT * FROM Tb WHERE f10 > x`
    Qs4,
    /// `INSERT INTO Ta VALUES (f0, f1, ..., fp)`
    Qs5,
    /// `INSERT INTO Tb VALUES (f0, f1, ..., fp)`
    Qs6,
    /// `SELECT fi + fj + ... + fk FROM Ta WHERE f0 < x` — record-at-a-time
    /// processing, parameterized by projectivity and selectivity (Fig 15).
    Arithmetic {
        /// Number of fields projected.
        projectivity: u32,
        /// Fraction of records selected.
        selectivity: f64,
    },
    /// `SELECT AVG(fi), ..., AVG(fj) FROM Ta WHERE f0 < x` — field-at-a-time
    /// processing (each field scanned independently), parameterized as above.
    Aggregate {
        /// Number of fields projected (averaged).
        projectivity: u32,
        /// Fraction of records selected.
        selectivity: f64,
    },
}

impl Query {
    /// The twelve column-store-preferring queries.
    pub fn q_set() -> [Query; 12] {
        use Query::*;
        [Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10, Q11, Q12]
    }

    /// The six row-store-preferring supplemental queries.
    pub fn qs_set() -> [Query; 6] {
        use Query::*;
        [Qs1, Qs2, Qs3, Qs4, Qs5, Qs6]
    }

    /// Short display name ("Q1", "Qs5", ...).
    pub fn name(&self) -> String {
        use Query::*;
        match self {
            Q1 => "Q1".into(),
            Q2 => "Q2".into(),
            Q3 => "Q3".into(),
            Q4 => "Q4".into(),
            Q5 => "Q5".into(),
            Q6 => "Q6".into(),
            Q7 => "Q7".into(),
            Q8 => "Q8".into(),
            Q9 => "Q9".into(),
            Q10 => "Q10".into(),
            Q11 => "Q11".into(),
            Q12 => "Q12".into(),
            Qs1 => "Qs1".into(),
            Qs2 => "Qs2".into(),
            Qs3 => "Qs3".into(),
            Qs4 => "Qs4".into(),
            Qs5 => "Qs5".into(),
            Qs6 => "Qs6".into(),
            Arithmetic {
                projectivity,
                selectivity,
            } => {
                format!("Arith(p={projectivity},s={selectivity})")
            }
            Aggregate {
                projectivity,
                selectivity,
            } => {
                format!("Aggr(p={projectivity},s={selectivity})")
            }
        }
    }

    /// The SQL statement of Table 3.
    pub fn sql(&self) -> String {
        use Query::*;
        match self {
            Q1 => "SELECT f3, f4 FROM Ta WHERE f10 > x".into(),
            Q2 => "SELECT * FROM Tb WHERE f10 > x".into(),
            Q3 => "SELECT SUM(f9) FROM Ta WHERE f10 > x".into(),
            Q4 => "SELECT SUM(f9) FROM Tb WHERE f10 > x".into(),
            Q5 => "SELECT AVG(f1) FROM Ta WHERE f10 > x".into(),
            Q6 => "SELECT AVG(f1) FROM Tb WHERE f10 > x".into(),
            Q7 => "SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f1 > Tb.f1 AND Ta.f9 = Tb.f9".into(),
            Q8 => "SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9".into(),
            Q9 => "SELECT f3, f4 FROM Ta WHERE f1 > x AND f9 < y".into(),
            Q10 => "SELECT f3, f4 FROM Ta WHERE f1 > x AND f2 < y".into(),
            Q11 => "UPDATE Tb SET f3 = x, f4 = y WHERE f10 = z".into(),
            Q12 => "UPDATE Tb SET f9 = x WHERE f10 = y".into(),
            Qs1 => "SELECT * FROM Ta LIMIT 1024".into(),
            Qs2 => "SELECT * FROM Tb LIMIT 1024".into(),
            Qs3 => "SELECT * FROM Ta WHERE f10 > x".into(),
            Qs4 => "SELECT * FROM Tb WHERE f10 > x".into(),
            Qs5 => "INSERT INTO Ta VALUES (f0, f1, ..., fp)".into(),
            Qs6 => "INSERT INTO Tb VALUES (f0, f1, ..., fp)".into(),
            Arithmetic { .. } => "SELECT fi + fj + ... + fk FROM Ta WHERE f0 < x".into(),
            Aggregate { .. } => "SELECT AVG(fi), ..., AVG(fj) FROM Ta WHERE f0 < x".into(),
        }
    }

    /// Whether this query modifies the database.
    pub fn is_write(&self) -> bool {
        matches!(self, Query::Q11 | Query::Q12 | Query::Qs5 | Query::Qs6)
    }

    /// Whether this is one of the supplemental row-store-preferring queries.
    pub fn prefers_row_store(&self) -> bool {
        matches!(
            self,
            Query::Qs1 | Query::Qs2 | Query::Qs3 | Query::Qs4 | Query::Qs5 | Query::Qs6
        )
    }

    /// A relative simulation-cost estimate under `plan`, proportional to
    /// the fields x records the query touches. Only the *ordering* of the
    /// hints matters: the sweep runner uses them to execute heavy runs
    /// first so one long (query, design) pair cannot land last and gate
    /// the whole sweep (the fig13 wall-clock tail). Tb carries the fixed
    /// ten-field schema of Table 3.
    pub fn cost_hint(&self, plan: &crate::plan::PlanConfig) -> u64 {
        use Query::*;
        const TB_FIELDS: u64 = 10;
        let ta = plan.ta_records;
        let tb = plan.tb_records;
        let ta_fields = plan.ta_fields as u64;
        match self {
            // Field scans: predicate plus the projected/aggregated fields.
            Q1 | Q9 | Q10 => ta * 3,
            Q3 | Q5 => ta * 2,
            Q4 | Q6 => tb * 2,
            // Full-record scans.
            Q2 => tb * TB_FIELDS,
            Qs3 => ta * ta_fields,
            Qs4 => tb * TB_FIELDS,
            // Joins walk both tables and materialize pairs — the dominant
            // Q-set runs.
            Q7 | Q8 => (ta + tb) * 4,
            // Updates: predicate scan plus write-back traffic.
            Q11 => tb * 3,
            Q12 => tb * 2,
            // LIMIT scans touch a fixed prefix regardless of table scale.
            Qs1 | Qs2 => 1024 * TB_FIELDS,
            // Inserts append whole records.
            Qs5 => ta * ta_fields,
            Qs6 => tb * TB_FIELDS,
            Arithmetic { projectivity, .. } | Aggregate { projectivity, .. } => {
                ta * (*projectivity as u64 + 1)
            }
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_have_expected_sizes() {
        assert_eq!(Query::q_set().len(), 12);
        assert_eq!(Query::qs_set().len(), 6);
    }

    #[test]
    fn write_classification_matches_table3() {
        let writes: Vec<String> = Query::q_set()
            .iter()
            .chain(Query::qs_set().iter())
            .filter(|q| q.is_write())
            .map(super::Query::name)
            .collect();
        assert_eq!(writes, ["Q11", "Q12", "Qs5", "Qs6"]);
    }

    #[test]
    fn qs_queries_prefer_row_store() {
        assert!(Query::qs_set().iter().all(super::Query::prefers_row_store));
        assert!(Query::q_set().iter().all(|q| !q.prefers_row_store()));
    }

    #[test]
    fn sql_statements_reference_their_table() {
        assert!(Query::Q3.sql().contains("Ta"));
        assert!(Query::Q4.sql().contains("Tb"));
        assert!(Query::Qs6.sql().contains("Tb"));
    }

    #[test]
    fn cost_hints_rank_joins_and_full_scans_heaviest() {
        let plan = crate::plan::PlanConfig::tiny();
        let join = Query::Q7.cost_hint(&plan);
        let agg = Query::Q3.cost_hint(&plan);
        let limit = Query::Qs1.cost_hint(&plan);
        assert!(join > agg, "joins dominate field scans: {join} vs {agg}");
        for q in Query::q_set().iter().chain(Query::qs_set().iter()) {
            assert!(q.cost_hint(&plan) > 0, "{q} hint must be positive");
        }
        // LIMIT queries must not scale with table size.
        let mut big = plan;
        big.ta_records *= 64;
        big.tb_records *= 64;
        assert_eq!(Query::Qs1.cost_hint(&big), limit);
    }

    #[test]
    fn parametric_names_embed_parameters() {
        let q = Query::Arithmetic {
            projectivity: 8,
            selectivity: 0.5,
        };
        assert_eq!(q.name(), "Arith(p=8,s=0.5)");
        assert!(!q.is_write());
    }
}

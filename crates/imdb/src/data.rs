//! Deterministic synthetic field values.
//!
//! Every field value in the database is a pure function of
//! `(seed, table, record, field)`, so the trace compiler ([`crate::plan`])
//! and the value-level reference executor ([`crate::values`]) agree on which
//! records a predicate selects *without sharing state*: `f10 > x` holds for
//! record `r` exactly when `selected(seed, table, r, sel)` says so, because
//! `x` is the corresponding quantile of the value distribution.

use sam_util::rng::SplitMix64;

/// The uniform 64-bit value of `field` of `record` in `table`.
pub fn field_value(seed: u64, table: u8, record: u64, field: u16) -> u64 {
    let mut h = SplitMix64::new(
        seed ^ ((table as u64) << 56)
            ^ record.wrapping_mul(0x9E37_79B9)
            ^ ((field as u64) << 40).wrapping_mul(0xC2B2_AE35),
    );
    h.next_u64()
}

/// The predicate field the Table 3 benchmark filters on (`f10 > x`).
pub const PRED_FIELD: u16 = 10;

/// The per-record selection hash the plans use: the value of the predicate
/// field of this record (as a fraction of u64) compared against the
/// selectivity.
pub fn predicate_fraction(seed: u64, table: u8, record: u64) -> f64 {
    field_value(seed, table, record, PRED_FIELD) as f64 / u64::MAX as f64
}

/// Whether `record` satisfies a predicate with the given `selectivity`
/// (i.e. `pred_field > threshold(selectivity)`).
pub fn selected(seed: u64, table: u8, record: u64, selectivity: f64) -> bool {
    predicate_fraction(seed, table, record) > 1.0 - selectivity.clamp(0.0, 1.0)
}

/// The threshold value `x` such that `f10 > x` holds for a `selectivity`
/// fraction of records (in expectation).
pub fn threshold(selectivity: f64) -> u64 {
    let keep = 1.0 - selectivity.clamp(0.0, 1.0);
    (keep * u64::MAX as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_deterministic_and_field_sensitive() {
        assert_eq!(field_value(1, 0, 5, 3), field_value(1, 0, 5, 3));
        assert_ne!(field_value(1, 0, 5, 3), field_value(1, 0, 5, 4));
        assert_ne!(field_value(1, 0, 5, 3), field_value(1, 0, 6, 3));
        assert_ne!(field_value(1, 0, 5, 3), field_value(1, 1, 5, 3));
        assert_ne!(field_value(1, 0, 5, 3), field_value(2, 0, 5, 3));
    }

    #[test]
    fn selection_rate_matches_selectivity() {
        let n = 20_000u64;
        for sel in [0.1, 0.25, 0.5] {
            let hits = (0..n).filter(|&r| selected(9, 0, r, sel)).count() as f64;
            let frac = hits / n as f64;
            assert!((frac - sel).abs() < 0.02, "sel {sel}: got {frac}");
        }
    }

    #[test]
    fn selected_iff_value_above_threshold() {
        let sel = 0.25;
        let x = threshold(sel);
        for r in 0..2000u64 {
            let by_hash = selected(7, 0, r, sel);
            let by_value = field_value(7, 0, r, PRED_FIELD) > x;
            assert_eq!(by_hash, by_value, "record {r}");
        }
    }

    #[test]
    fn extreme_selectivities() {
        for r in 0..100 {
            assert!(!selected(3, 0, r, 0.0));
            assert!(selected(3, 0, r, 1.0));
        }
    }
}

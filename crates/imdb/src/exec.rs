//! Query execution: runs compiled plans against a design/system and
//! derives the paper's metrics (speedup vs the row-store baseline, the
//! ideal row/column reference).

use sam::design::Design;
use sam::designs::commodity;
use sam::layout::Store;
use sam::system::{RunResult, System, SystemConfig};

use crate::plan::{compile, Plan, PlanConfig};
use crate::query::Query;

/// A query plus its scaling configuration.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// The query to run.
    pub query: Query,
    /// Scaling/seed configuration.
    pub plan: PlanConfig,
    /// System configuration (cores, MLP, granularity...).
    pub system: SystemConfig,
}

impl Workload {
    /// A workload with the default system configuration.
    pub fn new(query: Query, plan: PlanConfig) -> Self {
        Self {
            query,
            plan,
            system: SystemConfig::default(),
        }
    }

    /// Replaces the system configuration (builder-style).
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Compiles this workload's plan.
    pub fn compile(&self) -> Plan {
        compile(self.query, &self.plan)
    }
}

/// The outcome of running one workload on one design.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// The query that ran.
    pub query: Query,
    /// Design name.
    pub design: &'static str,
    /// Store layout used.
    pub store: Store,
    /// Raw simulation result.
    pub result: RunResult,
}

/// Runs `workload` on `design` with tables organized as `store`.
pub fn run_query(workload: &Workload, design: &Design, store: Store) -> QueryRun {
    let plan = workload.compile();
    let system = System::new(workload.system, design.clone(), store);
    let result = system.run(&plan.tables, &plan.traces);
    QueryRun {
        query: workload.query,
        design: design.name,
        store,
        result,
    }
}

/// Like [`run_query`], with verification hooks attached (see
/// [`sam::system::Instrumentation`]).
pub fn run_query_instrumented(
    workload: &Workload,
    design: &Design,
    store: Store,
    instr: &mut sam::system::Instrumentation<'_>,
) -> QueryRun {
    let plan = workload.compile();
    let system = System::new(workload.system, design.clone(), store);
    let result = system.run_instrumented(&plan.tables, &plan.traces, instr);
    QueryRun {
        query: workload.query,
        design: design.name,
        store,
        result,
    }
}

/// Runs the row-store commodity baseline (the denominator of every speedup
/// in Figures 12, 14, and 15).
pub fn run_baseline(workload: &Workload) -> QueryRun {
    run_query(workload, &commodity(), Store::Row)
}

/// Runs the "ideal" reference: commodity hardware with whichever store the
/// query prefers (row for Qs-type, column for Q-type) — concretely, the
/// better of the two runs.
pub fn run_ideal(workload: &Workload) -> QueryRun {
    let row = run_query(workload, &commodity(), Store::Row);
    let col = run_query(workload, &commodity(), Store::Column);
    if row.result.cycles <= col.result.cycles {
        row
    } else {
        col
    }
}

/// Speedup of `run` relative to `baseline` (higher is better).
pub fn speedup(baseline: &QueryRun, run: &QueryRun) -> f64 {
    baseline.result.cycles as f64 / run.result.cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sam::designs::{gs_dram, sam_en, sam_io};

    fn wl(q: Query) -> Workload {
        Workload::new(q, PlanConfig::tiny())
    }

    #[test]
    fn sam_en_accelerates_q3() {
        let w = wl(Query::Q3);
        let base = run_baseline(&w);
        let sam = run_query(&w, &sam_en(), Store::Row);
        let s = speedup(&base, &sam);
        assert!(s > 1.5, "Q3 speedup {s:.2}");
    }

    #[test]
    fn ideal_picks_the_better_store() {
        let q = wl(Query::Q3);
        let ideal = run_ideal(&q);
        assert_eq!(ideal.store, Store::Column, "Q3 prefers column store");
        let qs = wl(Query::Qs3);
        let ideal_qs = run_ideal(&qs);
        assert_eq!(ideal_qs.store, Store::Row, "Qs3 prefers row store");
    }

    #[test]
    fn qs_queries_cap_at_baseline_for_sam() {
        let w = wl(Query::Qs4);
        let base = run_baseline(&w);
        let io = run_query(&w, &sam_io(), Store::Row);
        let s = speedup(&base, &io);
        assert!(s > 0.85 && s <= 1.05, "SAM-IO on Qs4: {s:.3}");
    }

    #[test]
    fn update_queries_run_and_write() {
        let w = wl(Query::Q12);
        let base = run_baseline(&w);
        assert!(base.result.writeback_bursts > 0);
        let sam = run_query(&w, &sam_en(), Store::Row);
        assert!(speedup(&base, &sam) > 1.0, "strided updates should win");
    }

    #[test]
    fn gs_dram_close_to_sam_on_reads() {
        let w = wl(Query::Q5);
        let base = run_baseline(&w);
        let gs = speedup(&base, &run_query(&w, &gs_dram(), Store::Row));
        let sam = speedup(&base, &run_query(&w, &sam_en(), Store::Row));
        let ratio = gs / sam;
        assert!(
            (0.7..1.4).contains(&ratio),
            "GS-DRAM vs SAM-en ratio {ratio:.2}"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let w = wl(Query::Q1);
        let a = run_baseline(&w);
        let b = run_baseline(&w);
        assert_eq!(a.result.cycles, b.result.cycles);
    }
}

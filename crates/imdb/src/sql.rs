//! A SQL front-end for the Table 3 query dialect.
//!
//! The paper specifies its benchmark as SQL statements; this module parses
//! that dialect — `SELECT` with field lists, `*`, `SUM`/`AVG` aggregates,
//! arithmetic projections, `WHERE` conjunctions of field comparisons,
//! `LIMIT`, plus `UPDATE ... SET` and `INSERT INTO` — and lowers the parse
//! to the planner's [`Query`] values, so a workload can be driven from the
//! literal strings of Table 3:
//!
//! ```
//! use sam_imdb::sql::parse;
//! use sam_imdb::query::Query;
//!
//! assert_eq!(parse("SELECT SUM(f9) FROM Ta WHERE f10 > x").unwrap(), Query::Q3);
//! ```

use crate::query::Query;

/// A parse or lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The tokenizer met an unexpected character.
    Lex(String),
    /// The parser met an unexpected token.
    Parse(String),
    /// The statement is valid SQL for this dialect but has no counterpart
    /// in the benchmark query set.
    Unsupported(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported statement: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Select,
    From,
    Where,
    And,
    Limit,
    Update,
    Set,
    Insert,
    Into,
    Values,
    Sum,
    Avg,
    Star,
    Comma,
    LParen,
    RParen,
    Plus,
    Eq,
    Lt,
    Gt,
    Dot,
    Ellipsis,
    Field(u16),
    Table(String),
    Number(u64),
    Param(char),
}

fn lex(input: &str) -> Result<Vec<Tok>, SqlError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            '+' => {
                chars.next();
                toks.push(Tok::Plus);
            }
            '=' => {
                chars.next();
                toks.push(Tok::Eq);
            }
            '<' => {
                chars.next();
                toks.push(Tok::Lt);
            }
            '>' => {
                chars.next();
                toks.push(Tok::Gt);
            }
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    if chars.next() != Some('.') {
                        return Err(SqlError::Lex("expected '...'".into()));
                    }
                    toks.push(Tok::Ellipsis);
                } else {
                    toks.push(Tok::Dot);
                }
            }
            '0'..='9' => {
                let mut n = 0u64;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n * 10 + v as u64;
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Number(n));
            }
            c if c.is_ascii_alphabetic() => {
                let mut word = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        word.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let lower = word.to_ascii_lowercase();
                toks.push(match lower.as_str() {
                    "select" => Tok::Select,
                    "from" => Tok::From,
                    "where" => Tok::Where,
                    "and" => Tok::And,
                    "limit" => Tok::Limit,
                    "update" => Tok::Update,
                    "set" => Tok::Set,
                    "insert" => Tok::Insert,
                    "into" => Tok::Into,
                    "values" => Tok::Values,
                    "sum" => Tok::Sum,
                    "avg" => Tok::Avg,
                    _ => {
                        if let Some(rest) = lower.strip_prefix('f') {
                            if let Ok(n) = rest.parse::<u16>() {
                                toks.push(Tok::Field(n));
                                continue;
                            }
                            if rest.len() == 1 {
                                // Symbolic fields fi/fj/fk/fp of Table 3.
                                toks.push(Tok::Param(rest.chars().next().expect("len 1")));
                                continue;
                            }
                        }
                        if lower.len() == 1 {
                            Tok::Param(lower.chars().next().expect("len 1"))
                        } else {
                            Tok::Table(word)
                        }
                    }
                });
            }
            other => return Err(SqlError::Lex(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

/// A parsed (but not yet lowered) statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// `SELECT` projections (empty for `*`), aggregate flags, etc.
    pub shape: Shape,
    /// Target table ("Ta" or "Tb").
    pub table: String,
    /// Fields compared in the WHERE clause (concrete ones).
    pub predicates: Vec<u16>,
    /// LIMIT value, if present.
    pub limit: Option<u64>,
}

/// Statement shape after parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// `SELECT f, f, ...`
    Project(Vec<u16>),
    /// `SELECT *`
    Star,
    /// `SELECT SUM(f)`
    Sum(u16),
    /// `SELECT AVG(f), ...` (possibly symbolic `AVG(fi), ..., AVG(fj)`).
    Avg(Vec<u16>),
    /// `SELECT fi + fj + ... + fk` (symbolic arithmetic projection).
    Arithmetic,
    /// `UPDATE t SET f = x, ...`
    Update(Vec<u16>),
    /// `INSERT INTO t VALUES (...)`
    Insert,
    /// Join of two tables (Q7/Q8 form).
    Join {
        /// Whether the inequality predicate is present (Q7) or not (Q8).
        with_inequality: bool,
    },
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), SqlError> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(SqlError::Parse(format!(
                "expected {want:?}, found {other:?}"
            ))),
        }
    }

    fn table_name(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Tok::Table(t)) => Ok(t),
            other => Err(SqlError::Parse(format!(
                "expected table name, found {other:?}"
            ))),
        }
    }

    fn parse(&mut self) -> Result<Parsed, SqlError> {
        match self.next() {
            Some(Tok::Select) => self.parse_select(),
            Some(Tok::Update) => self.parse_update(),
            Some(Tok::Insert) => self.parse_insert(),
            other => Err(SqlError::Parse(format!(
                "expected a statement, found {other:?}"
            ))),
        }
    }

    fn parse_select(&mut self) -> Result<Parsed, SqlError> {
        let shape = self.parse_projection()?;
        self.expect(&Tok::From)?;
        let table = self.table_name()?;
        // Join form: `FROM Ta, Tb WHERE ...` with qualified predicates.
        if self.peek() == Some(&Tok::Comma) {
            self.next();
            let _second = self.table_name()?;
            let mut with_inequality = false;
            if self.peek() == Some(&Tok::Where) {
                self.next();
                // Walk tokens; detect a `>` among the join predicates.
                while let Some(t) = self.next() {
                    if t == Tok::Gt || t == Tok::Lt {
                        with_inequality = true;
                    }
                }
            }
            return Ok(Parsed {
                shape: Shape::Join { with_inequality },
                table,
                predicates: Vec::new(),
                limit: None,
            });
        }
        let mut predicates = Vec::new();
        let mut limit = None;
        loop {
            match self.next() {
                None => break,
                Some(Tok::Where) | Some(Tok::And) => {
                    match self.next() {
                        Some(Tok::Field(fld)) => {
                            // comparison operator + value/param
                            match self.next() {
                                Some(Tok::Gt) | Some(Tok::Lt) | Some(Tok::Eq) => {}
                                other => {
                                    return Err(SqlError::Parse(format!(
                                        "expected comparison, found {other:?}"
                                    )))
                                }
                            }
                            match self.next() {
                                Some(Tok::Param(_)) | Some(Tok::Number(_)) => {}
                                other => {
                                    return Err(SqlError::Parse(format!(
                                        "expected value, found {other:?}"
                                    )))
                                }
                            }
                            predicates.push(fld);
                        }
                        other => {
                            return Err(SqlError::Parse(format!(
                                "expected predicate field, found {other:?}"
                            )))
                        }
                    }
                }
                Some(Tok::Limit) => match self.next() {
                    Some(Tok::Number(n)) => limit = Some(n),
                    other => {
                        return Err(SqlError::Parse(format!("expected limit, found {other:?}")))
                    }
                },
                Some(other) => {
                    return Err(SqlError::Parse(format!("unexpected token {other:?}")));
                }
            }
        }
        Ok(Parsed {
            shape,
            table,
            predicates,
            limit,
        })
    }

    fn parse_projection(&mut self) -> Result<Shape, SqlError> {
        match self.peek() {
            Some(Tok::Star) => {
                self.next();
                Ok(Shape::Star)
            }
            Some(Tok::Sum) => {
                self.next();
                self.expect(&Tok::LParen)?;
                let f = match self.next() {
                    Some(Tok::Field(f)) => f,
                    other => {
                        return Err(SqlError::Parse(format!("expected field, found {other:?}")))
                    }
                };
                self.expect(&Tok::RParen)?;
                Ok(Shape::Sum(f))
            }
            Some(Tok::Avg) => {
                let mut fields = Vec::new();
                let mut symbolic = false;
                loop {
                    match self.peek() {
                        Some(Tok::Avg) => {
                            self.next();
                            self.expect(&Tok::LParen)?;
                            match self.next() {
                                Some(Tok::Field(f)) => fields.push(f),
                                Some(Tok::Param(_)) => symbolic = true,
                                other => {
                                    return Err(SqlError::Parse(format!(
                                        "expected field, found {other:?}"
                                    )))
                                }
                            }
                            self.expect(&Tok::RParen)?;
                        }
                        Some(Tok::Comma) => {
                            self.next();
                            if self.peek() == Some(&Tok::Ellipsis) {
                                self.next();
                                symbolic = true;
                                // consume following comma if present
                                if self.peek() == Some(&Tok::Comma) {
                                    self.next();
                                }
                            }
                        }
                        _ => break,
                    }
                }
                let _ = symbolic;
                Ok(Shape::Avg(fields))
            }
            Some(Tok::Field(_)) | Some(Tok::Param(_)) | Some(Tok::Table(_)) => {
                // Either a field list `f3, f4`, a qualified list `Ta.f3,
                // Tb.f4` (join), or a symbolic arithmetic chain
                // `fi + fj + ... + fk`.
                let mut fields = Vec::new();
                let mut arithmetic = false;
                loop {
                    match self.peek() {
                        Some(Tok::Field(f)) => {
                            fields.push(*f);
                            self.next();
                        }
                        Some(Tok::Param(_)) => {
                            self.next();
                            arithmetic = true;
                        }
                        Some(Tok::Table(_)) => {
                            // Qualified `Ta.f3`: swallow `Ta` and `.`.
                            self.next();
                            self.expect(&Tok::Dot)?;
                        }
                        Some(Tok::Plus) => {
                            self.next();
                            arithmetic = true;
                        }
                        Some(Tok::Ellipsis) => {
                            self.next();
                            arithmetic = true;
                        }
                        Some(Tok::Comma) => {
                            self.next();
                        }
                        _ => break,
                    }
                }
                if arithmetic {
                    Ok(Shape::Arithmetic)
                } else {
                    Ok(Shape::Project(fields))
                }
            }
            other => Err(SqlError::Parse(format!(
                "unexpected projection start: {other:?}"
            ))),
        }
    }

    fn parse_update(&mut self) -> Result<Parsed, SqlError> {
        let table = self.table_name()?;
        self.expect(&Tok::Set)?;
        let mut fields = Vec::new();
        let mut predicates = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Field(f)) => {
                    self.expect(&Tok::Eq)?;
                    match self.next() {
                        Some(Tok::Param(_)) | Some(Tok::Number(_)) => {}
                        other => {
                            return Err(SqlError::Parse(format!("expected value, found {other:?}")))
                        }
                    }
                    fields.push(f);
                }
                Some(Tok::Comma) => {}
                Some(Tok::Where) => {
                    if let Some(Tok::Field(f)) = self.next() {
                        predicates.push(f);
                    }
                    // comparison + value
                    self.next();
                    self.next();
                }
                None => break,
                Some(other) => return Err(SqlError::Parse(format!("unexpected token {other:?}"))),
            }
        }
        Ok(Parsed {
            shape: Shape::Update(fields),
            table,
            predicates,
            limit: None,
        })
    }

    fn parse_insert(&mut self) -> Result<Parsed, SqlError> {
        self.expect(&Tok::Into)?;
        let table = self.table_name()?;
        self.expect(&Tok::Values)?;
        // Swallow the value tuple.
        while self.next().is_some() {}
        Ok(Parsed {
            shape: Shape::Insert,
            table,
            predicates: Vec::new(),
            limit: None,
        })
    }
}

/// Parses one statement of the Table 3 dialect.
///
/// # Errors
///
/// [`SqlError::Lex`]/[`SqlError::Parse`] on malformed input.
pub fn parse_statement(input: &str) -> Result<Parsed, SqlError> {
    let toks = lex(input)?;
    Parser { toks, pos: 0 }.parse()
}

/// Parses a statement and lowers it to the benchmark [`Query`] it denotes.
///
/// # Errors
///
/// [`SqlError::Unsupported`] when the statement parses but matches no
/// benchmark query (the planner only implements Table 3's set).
pub fn parse(input: &str) -> Result<Query, SqlError> {
    let p = parse_statement(input)?;
    let is_ta = p.table.eq_ignore_ascii_case("ta");
    let q = match (&p.shape, is_ta) {
        (Shape::Project(f), true) if f == &vec![3, 4] && p.predicates == vec![10] => Query::Q1,
        (Shape::Star, false) if p.predicates == vec![10] && p.limit.is_none() => Query::Q2,
        (Shape::Sum(9), true) if p.predicates == vec![10] => Query::Q3,
        (Shape::Sum(9), false) if p.predicates == vec![10] => Query::Q4,
        (Shape::Avg(f), true) if f == &vec![1] && p.predicates == vec![10] => Query::Q5,
        (Shape::Avg(f), false) if f == &vec![1] && p.predicates == vec![10] => Query::Q6,
        (
            Shape::Join {
                with_inequality: true,
            },
            true,
        ) => Query::Q7,
        (
            Shape::Join {
                with_inequality: false,
            },
            true,
        ) => Query::Q8,
        (Shape::Project(f), true) if f == &vec![3, 4] && p.predicates == vec![1, 9] => Query::Q9,
        (Shape::Project(f), true) if f == &vec![3, 4] && p.predicates == vec![1, 2] => Query::Q10,
        (Shape::Update(f), false) if f == &vec![3, 4] => Query::Q11,
        (Shape::Update(f), false) if f == &vec![9] => Query::Q12,
        (Shape::Star, true) if p.limit.is_some() => Query::Qs1,
        (Shape::Star, false) if p.limit.is_some() => Query::Qs2,
        (Shape::Star, true) if p.predicates == vec![10] => Query::Qs3,
        (Shape::Insert, true) => Query::Qs5,
        (Shape::Insert, false) => Query::Qs6,
        (Shape::Arithmetic, true) => Query::Arithmetic {
            projectivity: 8,
            selectivity: 0.25,
        },
        (Shape::Avg(_), true) => Query::Aggregate {
            projectivity: 8,
            selectivity: 0.25,
        },
        _ => return Err(SqlError::Unsupported(input.to_string())),
    };
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table3_statement_parses_to_its_query() {
        // Qs4's SQL is identical in shape to Qs3 with Tb; handled below.
        for q in Query::q_set() {
            let sql = q.sql();
            assert_eq!(parse(&sql).unwrap(), q, "{sql}");
        }
        assert_eq!(parse(&Query::Qs1.sql()).unwrap(), Query::Qs1);
        assert_eq!(parse(&Query::Qs2.sql()).unwrap(), Query::Qs2);
        assert_eq!(parse(&Query::Qs3.sql()).unwrap(), Query::Qs3);
        assert_eq!(parse(&Query::Qs5.sql()).unwrap(), Query::Qs5);
        assert_eq!(parse(&Query::Qs6.sql()).unwrap(), Query::Qs6);
    }

    #[test]
    fn qs4_lowers_to_tb_star_scan() {
        // `SELECT * FROM Tb WHERE f10 > x` without LIMIT is Q2's shape in
        // Table 3; the Qs4 variant shares the text, so the lowering maps it
        // to Q2 (the earlier, column-preferring entry). Document the
        // ambiguity: both scan Tb tuples behind an f10 predicate.
        let q = parse("SELECT * FROM Tb WHERE f10 > x").unwrap();
        assert!(matches!(q, Query::Q2));
    }

    #[test]
    fn case_insensitive_keywords() {
        assert_eq!(
            parse("select sum(f9) from Ta where f10 > x").unwrap(),
            Query::Q3
        );
    }

    #[test]
    fn numbers_accepted_as_comparison_values() {
        assert_eq!(
            parse("SELECT SUM(f9) FROM Ta WHERE f10 > 42").unwrap(),
            Query::Q3
        );
    }

    #[test]
    fn arithmetic_chain_detected() {
        let p = parse_statement("SELECT fi + fj + ... + fk FROM Ta WHERE f0 < x").unwrap();
        assert_eq!(p.shape, Shape::Arithmetic);
        assert!(matches!(
            parse("SELECT fi + fj + ... + fk FROM Ta WHERE f0 < x").unwrap(),
            Query::Arithmetic { .. }
        ));
    }

    #[test]
    fn aggregate_ellipsis_detected() {
        assert!(matches!(
            parse("SELECT AVG(fi), ..., AVG(fj) FROM Ta WHERE f0 < x").unwrap(),
            Query::Aggregate { .. }
        ));
    }

    #[test]
    fn join_inequality_distinguishes_q7_from_q8() {
        assert_eq!(
            parse("SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f1 > Tb.f1 AND Ta.f9 = Tb.f9").unwrap(),
            Query::Q7
        );
        assert_eq!(
            parse("SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9").unwrap(),
            Query::Q8
        );
    }

    #[test]
    fn lex_errors_are_reported() {
        assert!(matches!(parse("SELECT #"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(parse("FROM Ta"), Err(SqlError::Parse(_))));
        assert!(matches!(
            parse("SELECT SUM(f9 FROM Ta"),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn unsupported_statements_are_flagged() {
        assert!(matches!(
            parse("SELECT f7 FROM Ta WHERE f10 > x"),
            Err(SqlError::Unsupported(_))
        ));
    }
}

//! A minimal, offline, deterministic subset of the `proptest` crate API.
//!
//! The build environment for this repository has no access to a crates.io
//! registry (the configured mirror is unreachable and the local cargo cache
//! is empty), so the real `proptest` cannot be resolved. This vendored crate
//! reimplements exactly the surface the workspace's property suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! * [`Strategy`] with `prop_map`, [`Just`], `any::<T>()`,
//! * integer / float range strategies (`a..b`, `a..=b`, `a..`),
//! * tuple strategies up to arity 5 and [`collection::vec`].
//!
//! Generation is pseudo-random but fully deterministic: each test function
//! seeds its own RNG from the test name, so failures reproduce exactly.
//! Unlike the real proptest there is no shrinking and no regression-file
//! persistence; assertion failures panic with the formatted message.

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from an arbitrary string (the test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h | 1, // never zero
        }
    }

    /// Next 64 pseudo-random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 pseudo-random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, n)` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-test configuration, settable via `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator. The subset here generates eagerly and does not shrink.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide range.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

macro_rules! impl_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u128() % span) as $ty)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain.
                    return rng.next_u128() as $ty;
                }
                lo.wrapping_add((rng.next_u128() % span) as $ty)
            }
        }

        impl Strategy for std::ops::RangeFrom<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                (self.start..=<$ty>::MAX).generate(rng)
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, u128, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Weighted choice between two strategies with the same value type; chains
/// of these are built by [`prop_oneof!`] (the `Value = A::Value` bound is
/// what lets integer literals in later arms unify with the first arm).
#[derive(Debug, Clone)]
pub struct OneOf<A, B> {
    left: A,
    right: B,
    left_weight: u32,
    right_weight: u32,
}

impl<A, B> OneOf<A, B> {
    /// Chooses `left` with probability `lw / (lw + rw)`, else `right`.
    pub fn new(left: A, right: B, left_weight: u32, right_weight: u32) -> Self {
        Self {
            left,
            right,
            left_weight,
            right_weight,
        }
    }
}

impl<A, B> Strategy for OneOf<A, B>
where
    A: Strategy,
    B: Strategy<Value = A::Value>,
{
    type Value = A::Value;

    fn generate(&self, rng: &mut TestRng) -> A::Value {
        let total = (self.left_weight + self.right_weight) as u64;
        if rng.below(total) < self.left_weight as u64 {
            self.left.generate(rng)
        } else {
            self.right.generate(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = self.hi_inclusive - self.lo + 1;
            self.lo + rng.below(span as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy of the given element strategy and size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a proptest body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a proptest body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a proptest body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($strat:expr $(,)?) => { $strat };
    ($first:expr, $($rest:expr),+ $(,)?) => {
        $crate::OneOf::new(
            $first,
            $crate::prop_oneof!($($rest),+),
            1,
            [$(stringify!($rest)),+].len() as u32,
        )
    };
}

/// Glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, OneOf, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 2u32..=3, c in 1u8.., f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b == 2 || b == 3);
            prop_assert!(c >= 1);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn oneof_and_map_compose(v in collection::vec(prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)], 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x == 1 || (20..40).contains(&x));
            }
        }

        #[test]
        fn tuples_generate(t in (0usize..2, 0usize..4, any::<bool>())) {
            prop_assert!(t.0 < 2 && t.1 < 4);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! A minimal, offline subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be resolved. This vendored crate provides just enough of the API
//! for the workspace's `harness = false` benches to compile and produce
//! useful wall-clock numbers: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. There is no statistical analysis, outlier
//! rejection, or HTML report — each benchmark is timed over a fixed number
//! of iterations and the mean is printed.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (a registry of groups).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into(), 20, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under the given identifier.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    /// Times `f`, passing it a borrowed input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A function/parameter benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An identifier of the form `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up iteration.
        let _ = routine();
        for _ in 0..self.budget {
            let start = Instant::now();
            let _ = routine();
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    println!(
        "  {label}: mean {mean:?}, min {min:?} ({} iterations)",
        b.samples.len()
    );
}

/// Declares a benchmark group function (criterion-compatible signature).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}

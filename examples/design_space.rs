//! Design-space exploration: strided granularity and the SAM-en options.
//!
//! ```text
//! cargo run --release --example design_space
//! ```
//!
//! Two explorations the paper discusses but a downstream adopter would want
//! to rerun on their own workload:
//!
//! 1. Granularity (Section 4.4): 16-bit/8-bit/4-bit per chip trade burst
//!    efficiency against chipkill symbol size (Figure 14(b)).
//! 2. SAM-en's two options (Section 4.3): fine-grained activation (power)
//!    and the 2D I/O buffer (layout/critical-word-first) toggled
//!    independently — the ablation behind the SAM-en design point.

use sam_repro::sam::design::Granularity;
use sam_repro::sam::designs::{sam_en, sam_en_no_2d, sam_en_no_fga, sam_io};
use sam_repro::sam::layout::Store;
use sam_repro::sam::system::SystemConfig;
use sam_repro::sam_imdb::exec::{run_baseline, run_query, speedup, Workload};
use sam_repro::sam_imdb::plan::PlanConfig;
use sam_repro::sam_imdb::query::Query;
use sam_repro::sam_power::{breakdown, ActivityCounts, PowerParams};

fn main() {
    let mut plan = PlanConfig::default_scale();
    plan.ta_records = 8192;

    println!("Granularity sweep on Q3 (Figure 14(b))\n");
    for gran in [Granularity::Bits16, Granularity::Bits8, Granularity::Bits4] {
        let sys = SystemConfig {
            granularity: gran,
            ..Default::default()
        };
        let w = Workload::new(Query::Q3, plan).with_system(sys);
        let base = run_baseline(&w);
        let run = run_query(&w, &sam_en(), Store::Row);
        println!(
            "  {gran}: gathers {} lines/burst -> {:.2}x speedup",
            gran.gather(),
            speedup(&base, &run)
        );
    }

    println!("\nSAM-en option ablation on Q3 (Section 4.3)\n");
    let w = Workload::new(Query::Q3, plan);
    let base = run_baseline(&w);
    for design in [sam_io(), sam_en_no_fga(), sam_en_no_2d(), sam_en()] {
        let run = run_query(&w, &design, Store::Row);
        let params = PowerParams::for_design(&design);
        let activity = ActivityCounts::from_run(&run.result, 8);
        let power = breakdown(&params, &design, &activity);
        println!(
            "  {:>13}: {:.2}x speedup, {:>6.1} mW, critical-word-first: {}",
            design.name,
            speedup(&base, &run),
            power.total_mw(),
            design.critical_word_first
        );
    }
    println!("\nOption 1 (fine-grained activation) buys back SAM-IO's over-fetch");
    println!("power; option 2 (2D buffer) restores the default codeword layout");
    println!("and critical-word-first. Together they are SAM-en.");
}

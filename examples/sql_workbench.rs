//! SQL in, answers and speedups out: the database substrate end-to-end.
//!
//! ```text
//! cargo run --release --example sql_workbench
//! ```
//!
//! Parses Table 3's literal SQL, executes it against materialized tables
//! for real answers, and measures how much faster SAM-en's stride mode
//! serves the same statement.

use sam_repro::sam::designs::sam_en;
use sam_repro::sam::layout::Store;
use sam_repro::sam_imdb::exec::{run_baseline, run_query, speedup, Workload};
use sam_repro::sam_imdb::plan::PlanConfig;
use sam_repro::sam_imdb::sql::parse;
use sam_repro::sam_imdb::values::{Answer, Database};

fn main() {
    let mut plan = PlanConfig::default_scale();
    plan.ta_records = 4096;
    plan.tb_records = 16384;
    let mut db = Database::generate(&plan);

    let statements = [
        "SELECT SUM(f9) FROM Ta WHERE f10 > x",
        "SELECT AVG(f1) FROM Tb WHERE f10 > x",
        "SELECT f3, f4 FROM Ta WHERE f1 > x AND f9 < y",
        "UPDATE Tb SET f9 = x WHERE f10 = y",
    ];

    for sql in statements {
        let query = parse(sql).expect("Table 3 dialect");
        let answer = db.execute(query);
        let summary = match &answer {
            Answer::Sum(s) => format!("SUM = {s:#x}"),
            Answer::Avgs(a) => format!(
                "AVG = {:.1} (x{} fields)",
                a.first().copied().unwrap_or(0.0),
                a.len()
            ),
            Answer::Rows(r) => format!("{} rows", r.len()),
            Answer::Modified(n) => format!("{n} rows modified"),
        };
        let w = Workload::new(query, plan);
        let base = run_baseline(&w);
        let sam = run_query(&w, &sam_en(), Store::Row);
        println!("{sql}");
        println!("  -> {query}: {summary}");
        println!(
            "  -> baseline {} cycles, SAM-en {} cycles: {:.2}x\n",
            base.result.cycles,
            sam.result.cycles,
            speedup(&base, &sam)
        );
    }
    println!("The parser, the value-level executor, and the timing simulator all");
    println!("agree on which records each statement touches (tests/consistency.rs).");
}

//! The system-support stack of Section 5 end-to-end: a field-scan kernel
//! written with the `sload` ISA extension (5.1.2), over an address space
//! whose pages carry the stride-mode attribute (5.2, Figure 10).
//!
//! ```text
//! cargo run --release --example isa_kernel
//! ```

use sam_repro::sam::design::Granularity;
use sam_repro::sam::isa::{field_scan_kernel, Stop};
use sam_repro::sam::os::{AddressSpace, PAGE_BYTES};

fn main() {
    // 1. The IMDB maps a 64KB record region and flags it for stride mode —
    //    the madvise-style call Section 5.2's kernel module would expose.
    let mut vm = AddressSpace::new(0x1000_0000, Granularity::Bits4);
    let vbase = 0x7000_0000u64;
    let len = 16 * PAGE_BYTES;
    vm.mmap(vbase, len, false, false).expect("fresh mapping");
    vm.set_stride_mode(vbase, len, true).expect("mapped range");
    println!(
        "mapped {len} bytes at {vbase:#x}; stride-mode pages: {}",
        vm.is_stride_page(vbase)
    );

    // 2. A scan kernel over 32 records of 1KB, summing field 9 (offset 72)
    //    with `sload` — the two-instruction ISA extension of Section 5.1.2.
    //    The program runs on *virtual* addresses, like any user program.
    let records = 32u16;
    let (program, mut machine) = field_scan_kernel(vbase, 1024, 72, records, true);
    println!(
        "kernel: {} instructions, {} bytes of machine code",
        program.insts().len(),
        program.assemble().len() * 4
    );

    // 3. Load the field values (virtual view) and run.
    let mut expected = 0u64;
    for r in 0..records as u64 {
        let value = r * r + 1;
        machine.poke(vbase + r * 1024 + 72, value);
        expected = expected.wrapping_add(value);
    }
    let stop = machine.run(&program, 10_000);
    assert_eq!(stop, Stop::Halted);
    assert_eq!(machine.reg(3), expected, "sload kernel computes the sum");
    println!(
        "executed: {stop:?}; kernel sum = {:#x} (expected {expected:#x})",
        machine.reg(3)
    );

    // 4. Below the core, each logged access translates through the
    //    stride-mode page tables: the Figure 10 swap moves the accesses to
    //    the reshaped physical rows while keeping the 16B unit offset.
    println!("\nfirst four sloads through the stride-mode page tables:");
    for access in machine.log().iter().take(4) {
        let paddr = vm.translate(access.addr).expect("mapped");
        println!(
            "  vaddr {:#010x} -> paddr {:#010x}  (strided: {}, 16B offset preserved: {})",
            access.addr,
            paddr,
            access.strided,
            paddr % 16 == access.addr % 16,
        );
    }
    let strided = machine.log().iter().filter(|a| a.strided).count();
    println!(
        "\n{strided}/{} accesses carried the stride attribute — how the software\n\
         stack requests the Sx4_n I/O modes from the memory controller.",
        machine.log().len()
    );
}

//! HTAP scenario: the motivating workload of the paper's introduction.
//!
//! ```text
//! cargo run --release --example htap_analytics
//! ```
//!
//! A hybrid transactional/analytical mix cannot be served well by either a
//! pure row store or a pure column store: analytics want field scans,
//! transactions want whole records. This example runs an analytical query
//! (Q5), a transactional update (Q11), and a row-preferring tuple scan
//! (Qs4) and shows that SAM-en tracks the *better* store on every one,
//! while each fixed store loses somewhere.

use sam_repro::sam::designs::{commodity, sam_en};
use sam_repro::sam::layout::Store;
use sam_repro::sam_imdb::exec::{run_query, Workload};
use sam_repro::sam_imdb::plan::PlanConfig;
use sam_repro::sam_imdb::query::Query;
use sam_repro::sam_util::table::TextTable;

fn main() {
    let mut plan = PlanConfig::default_scale();
    plan.ta_records = 8192;
    plan.tb_records = 32768;

    let queries = [
        ("analytics", Query::Q5),
        ("transaction", Query::Q11),
        ("tuple scan", Query::Qs4),
    ];

    let mut table = TextTable::new(vec![
        "workload",
        "query",
        "row-store",
        "column-store",
        "SAM-en",
    ]);
    table.numeric();
    println!("HTAP mix on commodity DRAM vs SAM-en (cycles, lower is better)\n");
    for (label, q) in queries {
        let w = Workload::new(q, plan);
        let row = run_query(&w, &commodity(), Store::Row).result.cycles;
        let col = run_query(&w, &commodity(), Store::Column).result.cycles;
        let sam = run_query(&w, &sam_en(), Store::Row).result.cycles;
        table.row(vec![
            label.into(),
            q.name(),
            row.to_string(),
            col.to_string(),
            sam.to_string(),
        ]);
    }
    println!("{table}");
    println!("A fixed store wins one side of HTAP and loses the other; SAM-en");
    println!("keeps the row-store layout (fast transactions) and uses stride");
    println!("bursts to match column-store analytics — Section 3.1's argument.");
}

//! Chipkill reliability under strided access — the paper's differentiator.
//!
//! ```text
//! cargo run --release --example chipkill_reliability
//! ```
//!
//! Encodes a cacheline into a DDR4 burst under each design's codeword
//! layout, kills an entire DRAM chip mid-flight, and attempts recovery:
//! SAM's layouts (beat-spread and transposed) correct every chip failure,
//! while GS-DRAM's strided gather cannot even assemble a codeword.

use sam_repro::sam::designs::all_designs;
use sam_repro::sam_ecc::codes::SscCode;
use sam_repro::sam_ecc::inject::{chipkill_campaign, run_trial, Fault, Outcome};
use sam_repro::sam_ecc::layout::CodewordLayout;
use sam_repro::sam_util::rng::Xoshiro256StarStar;

fn main() {
    let code = SscCode::new();
    let line: [u8; 64] = std::array::from_fn(|i| (i as u8).wrapping_mul(97).wrapping_add(13));
    let mut rng = Xoshiro256StarStar::new(2026);

    println!("Single trial: chip 11 dies during a burst\n");
    for layout in [
        CodewordLayout::BeatSpread,
        CodewordLayout::Transposed,
        CodewordLayout::GatherNoEcc,
    ] {
        let outcome = run_trial(
            &code,
            layout,
            &line,
            Fault::ChipFailure { chip: 11 },
            &mut rng,
        );
        println!("  {layout:?}: {outcome:?}");
        match layout {
            CodewordLayout::GatherNoEcc => {
                assert_eq!(
                    outcome,
                    Outcome::Unprotected,
                    "GS-DRAM gather has no ECC to decode"
                );
            }
            _ => assert_eq!(
                outcome,
                Outcome::Corrected,
                "chipkill must correct a dead chip"
            ),
        }
    }

    println!("\nFull campaign: 50 corruption patterns x 18 chips per design\n");
    for design in all_designs() {
        let report = chipkill_campaign(&code, design.codeword_layout, 50, 0xFEED);
        println!(
            "  {:>12}: corrected {:>4}, unprotected {:>4}, chipkill-safe: {}",
            design.name,
            report.corrected,
            report.unprotected,
            report.chipkill_safe()
        );
    }
    println!("\nThis is Table 1's Reliability row made executable: GS-DRAM trades");
    println!("chipkill away for its speedup; SAM keeps both (Sections 4.1-4.3).");
}

//! Quickstart: measure how much SAM accelerates a strided field scan.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's wide table Ta, runs `SELECT SUM(f9) FROM Ta WHERE
//! f10 > x` (Q3) on commodity DRAM and on the three SAM designs, and prints
//! the speedups — the core claim of the paper in a dozen lines.

use sam_repro::sam::designs::{sam_en, sam_io, sam_sub};
use sam_repro::sam::layout::Store;
use sam_repro::sam_imdb::exec::{run_baseline, run_query, speedup, Workload};
use sam_repro::sam_imdb::plan::PlanConfig;
use sam_repro::sam_imdb::query::Query;

fn main() {
    let mut plan = PlanConfig::default_scale();
    plan.ta_records = 8192; // keep the example snappy
    let workload = Workload::new(Query::Q3, plan);

    println!("Q3: {}", Query::Q3.sql());
    println!("table Ta: {} records x 1KB\n", plan.ta_records);

    let baseline = run_baseline(&workload);
    println!(
        "commodity DRAM (row store): {} memory cycles, {:.0}% bus utilization",
        baseline.result.cycles,
        baseline.result.bus_utilization() * 100.0
    );

    for design in [sam_sub(), sam_io(), sam_en()] {
        let run = run_query(&workload, &design, Store::Row);
        println!(
            "{:>8}: {} cycles  ->  {:.2}x speedup  ({} stride bursts instead of {} line fills)",
            design.name,
            run.result.cycles,
            speedup(&baseline, &run),
            run.result.stride_bursts,
            baseline.result.line_bursts,
        );
    }
    println!("\nOne stride burst returns the scanned field of 8 records (4-bit");
    println!("granularity, Section 4.4), so SAM moves ~8x less data per record");
    println!("while staying chipkill-protected.");
}
